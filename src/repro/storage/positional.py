"""Positional inverted index — phrase queries over citation text.

The plain :class:`~repro.storage.index.InvertedIndex` answers bag-of-words
conjunctions; quoted phrases (``"cell proliferation"``) additionally need
token positions so adjacency can be verified.  This index stores, per
term, the ordered positions at which it occurs in each document.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.storage.index import tokenize

__all__ = ["PositionalIndex"]


class PositionalIndex:
    """Term → {doc_id → sorted token positions}."""

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[int, List[int]]] = {}
        self._doc_ids: Set[int] = set()

    def add_document(self, doc_id: int, text: str) -> None:
        """Index one document; re-adding a doc_id raises ValueError."""
        if doc_id in self._doc_ids:
            raise ValueError("document %d already indexed" % doc_id)
        self._doc_ids.add(doc_id)
        for position, token in enumerate(tokenize(text)):
            self._postings.setdefault(token, {}).setdefault(doc_id, []).append(position)

    def __len__(self) -> int:
        return len(self._doc_ids)

    def doc_ids(self) -> Set[int]:
        """All indexed document ids."""
        return set(self._doc_ids)

    # ------------------------------------------------------------------
    def term_docs(self, term: str) -> Set[int]:
        """Documents containing ``term`` (already lowercased)."""
        return set(self._postings.get(term, {}))

    def search_term(self, term: str) -> Set[int]:
        """Documents containing a single (possibly multi-token) term.

        A term that tokenizes to several tokens is treated as a phrase.
        """
        tokens = tokenize(term)
        if not tokens:
            return set()
        if len(tokens) == 1:
            return self.term_docs(tokens[0])
        return self.search_phrase(term)

    def search_phrase(self, phrase: str) -> Set[int]:
        """Documents containing the phrase's tokens adjacently, in order."""
        tokens = tokenize(phrase)
        if not tokens:
            return set()
        candidates = self.term_docs(tokens[0])
        for token in tokens[1:]:
            candidates &= self.term_docs(token)
            if not candidates:
                return set()
        matches: Set[int] = set()
        for doc_id in candidates:
            first_positions = self._postings[tokens[0]][doc_id]
            for start in first_positions:
                if all(
                    start + offset in self._position_set(token, doc_id)
                    for offset, token in enumerate(tokens[1:], start=1)
                ):
                    matches.add(doc_id)
                    break
        return matches

    # ------------------------------------------------------------------
    def _position_set(self, token: str, doc_id: int) -> Set[int]:
        return set(self._postings.get(token, {}).get(doc_id, ()))
