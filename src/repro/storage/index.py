"""Inverted keyword index over citation text.

PubMed resolves keyword queries server-side; our simulated ESearch needs a
local equivalent.  :class:`InvertedIndex` tokenizes titles and abstracts,
maintains postings with term frequencies, and supports conjunctive (AND)
retrieval — the semantics PubMed applies to multi-term queries.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set

__all__ = ["tokenize", "InvertedIndex"]

_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9+/\-]*")

# Minimal stopword list; PubMed ignores these in queries too.
_STOPWORDS = frozenset(
    "a an and are as at be by for from has in is it of on or that the to was we with".split()
)


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokens, keeping biomedical +/- and hyphens.

    ``"Na+/I- symporter"`` tokenizes to ``["na+/i-", "symporter"]`` so
    transporter names survive as single searchable terms.
    """
    return [t for t in _TOKEN_RE.findall(text.lower()) if t not in _STOPWORDS]


class InvertedIndex:
    """Term → postings index with conjunctive retrieval."""

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[int, int]] = {}
        self._doc_lengths: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def add_document(self, doc_id: int, text: str) -> None:
        """Index one document; re-adding a doc_id raises ValueError."""
        if doc_id in self._doc_lengths:
            raise ValueError("document %d already indexed" % doc_id)
        tokens = tokenize(text)
        self._doc_lengths[doc_id] = len(tokens)
        for token in tokens:
            bucket = self._postings.setdefault(token, {})
            bucket[doc_id] = bucket.get(doc_id, 0) + 1

    def __len__(self) -> int:
        return len(self._doc_lengths)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def postings(self, term: str) -> Dict[int, int]:
        """doc_id → term frequency for one (already lowercased) term."""
        return dict(self._postings.get(term, {}))

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, {}))

    def doc_length(self, doc_id: int) -> int:
        """Token count of one document (0 when unknown)."""
        return self._doc_lengths.get(doc_id, 0)

    def search(self, query: str) -> Set[int]:
        """Documents containing *all* query terms (PubMed AND semantics).

        An empty or all-stopword query matches nothing.
        """
        terms = tokenize(query)
        if not terms:
            return set()
        # Intersect smallest-first for speed.
        ordered = sorted(set(terms), key=self.document_frequency)
        result: Set[int] = set(self._postings.get(ordered[0], {}))
        for term in ordered[1:]:
            if not result:
                break
            result &= self._postings.get(term, {}).keys()
        return result

    def term_frequencies(self, doc_id: int, terms: Sequence[str]) -> List[int]:
        """Term frequency of each query term within one document."""
        return [self._postings.get(term, {}).get(doc_id, 0) for term in terms]
