"""BioNav database tables (paper §VII, off-line pre-processing).

The paper populates an Oracle database with ~747M ``(concept, citationId)``
tuples, then de-normalizes them into one row per citation holding the
comma-separated concept list, and also stores per-concept MEDLINE-wide
citation counts (needed by the EXPLORE probability).  This module implements
the same logical schema at laptop scale:

* :class:`AssociationTable` — the normalized (concept, citationId) relation
  with selection by either column,
* :class:`DenormalizedCitationTable` — the citationId → [concepts] form the
  paper derives for fast navigation-tree construction,
* :class:`ConceptStatsTable` — concept → MEDLINE-wide count.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

__all__ = ["AssociationTable", "DenormalizedCitationTable", "ConceptStatsTable"]


class AssociationTable:
    """The normalized (concept, citationId) association relation."""

    def __init__(self) -> None:
        self._by_concept: Dict[int, Set[int]] = {}
        self._by_citation: Dict[int, Set[int]] = {}
        self._size = 0

    def insert(self, concept: int, pmid: int) -> bool:
        """Insert one association tuple; returns False if already present."""
        bucket = self._by_concept.setdefault(concept, set())
        if pmid in bucket:
            return False
        bucket.add(pmid)
        self._by_citation.setdefault(pmid, set()).add(concept)
        self._size += 1
        return True

    def insert_many(self, pairs: Iterable[Tuple[int, int]]) -> int:
        """Bulk insert; returns number of new tuples."""
        return sum(1 for concept, pmid in pairs if self.insert(concept, pmid))

    def __len__(self) -> int:
        return self._size

    def citations_for(self, concept: int) -> FrozenSet[int]:
        """Citations associated with ``concept`` (empty set if none)."""
        return frozenset(self._by_concept.get(concept, ()))

    def concepts_for(self, pmid: int) -> FrozenSet[int]:
        """Concepts associated with citation ``pmid``."""
        return frozenset(self._by_citation.get(pmid, ()))

    def concepts(self) -> List[int]:
        """All concepts with at least one association, ascending."""
        return sorted(self._by_concept)

    def iter_rows(self) -> Iterator[Tuple[int, int]]:
        """Iterate (concept, pmid) tuples in sorted order."""
        for concept in sorted(self._by_concept):
            for pmid in sorted(self._by_concept[concept]):
                yield concept, pmid

    def denormalize(self) -> "DenormalizedCitationTable":
        """Produce the citation-major form (paper's optimization)."""
        table = DenormalizedCitationTable()
        for pmid, concepts in self._by_citation.items():
            table.put(pmid, sorted(concepts))
        return table


class DenormalizedCitationTable:
    """One row per citation: pmid → ordered concept list.

    This is the access path the online phase uses: given the PMIDs in a
    query result, fetch each one's concept list in a single lookup.
    """

    def __init__(self) -> None:
        self._rows: Dict[int, Tuple[int, ...]] = {}

    def put(self, pmid: int, concepts: Sequence[int]) -> None:
        """Store/replace the concept list of one citation."""
        self._rows[pmid] = tuple(concepts)

    def get(self, pmid: int) -> Tuple[int, ...]:
        """Concept list for a citation; raises KeyError when absent."""
        return self._rows[pmid]

    def get_many(self, pmids: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
        """Concept lists for many citations; missing PMIDs are skipped."""
        return {pmid: self._rows[pmid] for pmid in pmids if pmid in self._rows}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, pmid: int) -> bool:
        return pmid in self._rows

    def pmids(self) -> List[int]:
        """All stored PMIDs, ascending."""
        return sorted(self._rows)


class ConceptStatsTable:
    """Per-concept MEDLINE-wide citation counts (``LT(n)``, paper §IV).

    The paper records these while issuing the per-concept harvesting queries
    during off-line pre-processing.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def set_count(self, concept: int, count: int) -> None:
        """Record the MEDLINE-wide citation count of ``concept``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._counts[concept] = count

    def count(self, concept: int) -> int:
        """MEDLINE-wide count for ``concept`` (0 when never recorded)."""
        return self._counts.get(concept, 0)

    def __len__(self) -> int:
        return len(self._counts)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate (concept, count) pairs in concept order."""
        return iter(sorted(self._counts.items()))
