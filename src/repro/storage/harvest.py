"""The paper's off-line association harvest (§VII), faithfully.

BioNav's associations were not read out of MEDLINE directly: "For each
concept in the MeSH hierarchy, we issued a query on PubMed using the
concept as the keyword" — almost 20 days of rate-limited eutils calls
yielding 747M (concept, citationId) tuples plus each concept's
MEDLINE-wide count.

:class:`ConceptHarvester` reproduces that process against the simulated
eutils: one ESearch per concept label (paging included), respecting the
client's request quota by resetting it between windows and counting how
many windows the harvest consumed — the quantity that made the real run
take 20 days.  A test asserts the harvested association table matches the
directly-extracted one, validating the shortcut
:meth:`~repro.storage.database.BioNavDatabase.build` takes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.eutils.errors import RateLimitExceeded
from repro.hierarchy.concept import ConceptHierarchy
from repro.storage.tables import AssociationTable, ConceptStatsTable

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.eutils.client import EntrezClient

__all__ = ["HarvestResult", "ConceptHarvester"]


@dataclass(frozen=True)
class HarvestResult:
    """Outcome of one full harvest.

    Attributes:
        associations: the (concept, citationId) relation.
        stats: per-concept result counts recorded along the way (the
            ``LT(n)`` statistics, restricted to the materialized corpus).
        concepts_queried: concepts for which a query was issued.
        requests_issued: total eutils requests.
        quota_windows: rate-limit windows consumed (each window is a
            quota reset — wall-clock time in the real system).
    """

    associations: AssociationTable
    stats: ConceptStatsTable
    concepts_queried: int
    requests_issued: int
    quota_windows: int


class ConceptHarvester:
    """Issue one concept-label query per MeSH concept, like the paper."""

    def __init__(self, hierarchy: ConceptHierarchy, client: "EntrezClient"):
        self.hierarchy = hierarchy
        self.client = client

    def harvest(
        self,
        concepts: Optional[Iterable[int]] = None,
        page_size: int = 200,
    ) -> HarvestResult:
        """Run the harvest over ``concepts`` (default: every non-root one).

        When the client enforces a request quota, the harvester waits out
        the window (simulated as :meth:`EntrezClient.reset_quota`) and
        retries — mirroring the paper's pacing against NCBI limits.
        """
        if concepts is None:
            concepts = [n for n in range(len(self.hierarchy)) if n != self.hierarchy.root]
        associations = AssociationTable()
        stats = ConceptStatsTable()
        requests_before = self.client.total_requests
        windows = 0
        queried = 0
        for concept in concepts:
            # The paper queries PubMed with the concept as the keyword;
            # PubMed's MeSH translation resolves it to the indexed concept.
            # We issue the translated form directly ([mh:noexp] matches the
            # stored annotation without subtree explosion).
            term = '"%s"[mh:noexp]' % self.hierarchy.label(concept)
            pmids, extra_windows = self._search_all_with_quota(term, page_size)
            windows += extra_windows
            queried += 1
            stats.set_count(concept, len(pmids))
            for pmid in pmids:
                associations.insert(concept, pmid)
        return HarvestResult(
            associations=associations,
            stats=stats,
            concepts_queried=queried,
            requests_issued=self.client.total_requests - requests_before,
            quota_windows=windows,
        )

    # ------------------------------------------------------------------
    def _search_all_with_quota(
        self, term: str, page_size: int
    ) -> Tuple[List[int], int]:
        """ESearch with paging, riding out rate-limit windows."""
        pmids: List[int] = []
        start = 0
        windows = 0
        while True:
            try:
                page = self.client.esearch(term, retstart=start, retmax=page_size)
            except RateLimitExceeded:
                # A new rate-limit window: in the real system this is a
                # sleep; in the simulation the quota simply refills.
                self.client.reset_quota()
                windows += 1
                continue
            pmids.extend(page.ids)
            start += len(page.ids)
            if start >= page.count or not page.ids:
                return pmids, windows
