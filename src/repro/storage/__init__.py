"""The BioNav database: association tables, keyword index, persistence."""

from repro.storage.cache import LRUCache
from repro.storage.database import BioNavDatabase
from repro.storage.harvest import ConceptHarvester, HarvestResult
from repro.storage.index import InvertedIndex, tokenize
from repro.storage.positional import PositionalIndex
from repro.storage.tables import AssociationTable, ConceptStatsTable, DenormalizedCitationTable

__all__ = [
    "AssociationTable",
    "BioNavDatabase",
    "ConceptHarvester",
    "ConceptStatsTable",
    "DenormalizedCitationTable",
    "HarvestResult",
    "InvertedIndex",
    "LRUCache",
    "PositionalIndex",
    "tokenize",
]
