"""DEPRECATED single-threaded LRU cache (superseded by the pipeline).

Historically this module held the per-query navigation-state cache for
the single-threaded deployment.  The staged pipeline replaced it: every
stage artifact now lives in a per-stage
:class:`~repro.pipeline.concurrency.SingleFlightCache` inside a
:class:`~repro.pipeline.cache.StageCache`, which keeps the same
hit/miss/eviction counters *and* is safe under the multi-threaded
serving runtime.  Nothing in ``src/repro`` uses :class:`LRUCache` any
more; the class remains only so external callers get a
:class:`DeprecationWarning` and a migration pointer instead of an
``ImportError``.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Callable, Generic, Hashable, List, Optional, Tuple, TypeVar

__all__ = ["LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded mapping evicting the least-recently-used entry.

    .. deprecated::
        Use :class:`repro.pipeline.concurrency.SingleFlightCache` (the
        thread-safe equivalent with the same counter surface) or a
        :class:`repro.pipeline.cache.StageCache` for keyed pipeline
        artifacts.  This class is single-threaded and no longer used by
        the reproduction itself.
    """

    def __init__(self, capacity: int):
        warnings.warn(
            "repro.storage.cache.LRUCache is deprecated; use "
            "repro.pipeline.concurrency.SingleFlightCache (thread-safe, "
            "same counters) or repro.pipeline.cache.StageCache instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Value for ``key`` (refreshing its recency), or None."""
        if key not in self._entries:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: K, value: V) -> None:
        """Insert/refresh an entry, evicting the LRU one when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Fetch ``key`` or build it with ``factory`` and cache the result."""
        value = self.get(key)
        if value is None and key not in self._entries:
            value = factory()
            self.put(key, value)
        return value  # type: ignore[return-value]

    def items(self) -> List[Tuple[K, V]]:
        """Snapshot of (key, value) pairs, LRU first.

        Unlike :meth:`get`, this neither refreshes recency nor touches the
        hit/miss counters — it exists for stats endpoints that must
        observe the cache without perturbing it.
        """
        return list(self._entries.items())

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def hit_ratio(self) -> float:
        """Alias of :attr:`hit_rate`, matching the serving cache's name."""
        return self.hit_rate
