"""LRU cache for per-query navigation state.

The deployed BioNav constructs each query's navigation tree once and then
serves every EXPAND/SHOWRESULTS of that user session from it (paper §VII:
"this process is done once for each user query").  A multi-user deployment
additionally wants to share that work across users issuing the same query;
:class:`LRUCache` provides the bounded store for that, with hit/miss
statistics for capacity planning.

This cache is **single-threaded**: the hit/miss counters update
non-atomically with entry access (``self.hits += 1`` is a read-modify-
write, and ``move_to_end`` is a second step), so two threads sharing it
can lose counts or corrupt recency order.  The web layer therefore uses
:class:`repro.serving.concurrency.SingleFlightCache`, which performs
entry access and counter updates under one lock and adds single-flight
``get_or_create``; this class remains the cheap in-process variant for
offline/batch callers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, List, Optional, Tuple, TypeVar

__all__ = ["LRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded mapping evicting the least-recently-used entry."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Value for ``key`` (refreshing its recency), or None."""
        if key not in self._entries:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: K, value: V) -> None:
        """Insert/refresh an entry, evicting the LRU one when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Fetch ``key`` or build it with ``factory`` and cache the result."""
        value = self.get(key)
        if value is None and key not in self._entries:
            value = factory()
            self.put(key, value)
        return value  # type: ignore[return-value]

    def items(self) -> List[Tuple[K, V]]:
        """Snapshot of (key, value) pairs, LRU first.

        Unlike :meth:`get`, this neither refreshes recency nor touches the
        hit/miss counters — it exists for stats endpoints that must
        observe the cache without perturbing it.
        """
        return list(self._entries.items())

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def hit_ratio(self) -> float:
        """Alias of :attr:`hit_rate`, matching the serving cache's name."""
        return self.hit_rate
