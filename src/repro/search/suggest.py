"""Query refinement suggestions (the §IX systems, as a feature).

The paper situates BioNav against query-refinement tools: PubMed
PubReMiner "outputs a long list of all MeSH concepts associated with each
query along with their citation count", and XplorMed "performs statistical
analysis of the words in the abstracts of the citations in the query
result and proposes query refinements".  Both are straightforward over
our substrate, and they complement navigation: a refinement shrinks the
result set *before* the tree is built.

* :func:`suggest_concepts` — PubReMiner-style: the MeSH concepts most
  associated with the result set, with counts.
* :func:`suggest_terms` — XplorMed-style: abstract/title terms that are
  statistically enriched in the result set relative to the whole corpus
  (log-odds with add-one smoothing), each usable as an ``AND`` refinement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.storage import tokenize

__all__ = ["ConceptSuggestion", "TermSuggestion", "suggest_concepts", "suggest_terms"]


@dataclass(frozen=True)
class ConceptSuggestion:
    """One PubReMiner-style row: a concept and its result-set count."""

    concept: int
    label: str
    count: int
    fraction: float


@dataclass(frozen=True)
class TermSuggestion:
    """One XplorMed-style refinement term.

    Attributes:
        term: the token, usable directly as an AND refinement.
        result_count: result citations containing it.
        corpus_count: corpus citations containing it.
        score: smoothed log-odds of the term being result-specific.
    """

    term: str
    result_count: int
    corpus_count: int
    score: float


def suggest_concepts(
    medline: MedlineDatabase,
    hierarchy: ConceptHierarchy,
    pmids: Sequence[int],
    top_k: int = 20,
) -> List[ConceptSuggestion]:
    """The MeSH concepts most associated with a result set, with counts.

    Returns up to ``top_k`` suggestions, ordered by descending count
    (ties by label), exactly the list PubReMiner shows for refinement.
    """
    if top_k < 1:
        raise ValueError("top_k must be positive")
    counts: Dict[int, int] = {}
    for pmid in pmids:
        for concept in set(medline.get(pmid).concepts):
            counts[concept] = counts.get(concept, 0) + 1
    n = max(len(pmids), 1)
    ranked = sorted(
        counts.items(), key=lambda item: (-item[1], hierarchy.label(item[0]))
    )
    return [
        ConceptSuggestion(
            concept=concept,
            label=hierarchy.label(concept),
            count=count,
            fraction=count / n,
        )
        for concept, count in ranked[:top_k]
    ]


def suggest_terms(
    medline: MedlineDatabase,
    pmids: Sequence[int],
    top_k: int = 15,
    min_result_count: int = 3,
) -> List[TermSuggestion]:
    """Result-enriched text terms, ranked by smoothed log-odds.

    A term scores high when it appears in many result citations but few
    others — the XplorMed signal for a useful refinement.  Query-ubiquitous
    terms (present in nearly every result citation) are excluded: ANDing
    them would not narrow anything.
    """
    if top_k < 1:
        raise ValueError("top_k must be positive")
    result_set: Set[int] = set(pmids)
    n_results = len(result_set)
    if n_results == 0:
        return []
    result_df: Dict[str, int] = {}
    corpus_df: Dict[str, int] = {}
    n_corpus = 0
    for citation in medline.iter_citations():
        n_corpus += 1
        tokens = set(tokenize(citation.searchable_text()))
        for token in tokens:
            corpus_df[token] = corpus_df.get(token, 0) + 1
            if citation.pmid in result_set:
                result_df[token] = result_df.get(token, 0) + 1
    n_rest = max(n_corpus - n_results, 1)
    scored: List[Tuple[float, str]] = []
    for term, in_results in result_df.items():
        if in_results < min_result_count:
            continue
        if in_results >= 0.9 * n_results:
            continue  # ubiquitous within the result: useless refinement
        in_rest = corpus_df[term] - in_results
        odds_result = (in_results + 1) / (n_results - in_results + 1)
        odds_rest = (in_rest + 1) / (n_rest - in_rest + 1)
        scored.append((math.log(odds_result / odds_rest), term))
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [
        TermSuggestion(
            term=term,
            result_count=result_df[term],
            corpus_count=corpus_df[term],
            score=score,
        )
        for score, term in scored[:top_k]
    ]
