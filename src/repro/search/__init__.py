"""Keyword query engine: conjunctive search, TF-IDF ranking, and the
PubMed-style query language with field tags and phrases."""

from repro.search.engine import QueryResult, SearchEngine
from repro.search.evaluator import FieldedEngineAdapter, FieldedSearchEngine
from repro.search.query_language import (
    And,
    Not,
    Or,
    QuerySyntaxError,
    Term,
    format_query,
    parse_query,
)
from repro.search.ranking import rank_results, tf_idf_score
from repro.search.suggest import (
    ConceptSuggestion,
    TermSuggestion,
    suggest_concepts,
    suggest_terms,
)

__all__ = [
    "And",
    "ConceptSuggestion",
    "FieldedEngineAdapter",
    "FieldedSearchEngine",
    "Not",
    "Or",
    "QueryResult",
    "QuerySyntaxError",
    "SearchEngine",
    "TermSuggestion",
    "Term",
    "format_query",
    "parse_query",
    "rank_results",
    "suggest_concepts",
    "suggest_terms",
    "tf_idf_score",
]
