"""Evaluation of PubMed-style queries against the simulated corpus.

:class:`FieldedSearchEngine` pairs the query-language AST
(:mod:`repro.search.query_language`) with per-field positional indexes and
the MeSH annotation table:

* ``[ti]`` / ``[ab]`` terms match the title / abstract index,
* ``[all]`` (and untagged) terms match either,
* ``[mh]`` terms match citations annotated with the named MeSH concept —
  **with subtree explosion**, as PubMed does: a ``[mh]`` term matches the
  concept and all of its descendants,
* quoted phrases require adjacent in-order tokens,
* ``NOT`` complements against the full corpus.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.search.query_language import And, Node, Not, Or, Term, parse_query
from repro.storage.positional import PositionalIndex

__all__ = ["FieldedSearchEngine", "FieldedEngineAdapter"]


class FieldedSearchEngine:
    """Boolean/phrase/field query evaluation over a MEDLINE snapshot."""

    def __init__(self, medline: MedlineDatabase, hierarchy: ConceptHierarchy):
        self._medline = medline
        self._hierarchy = hierarchy
        self._title_index = PositionalIndex()
        self._abstract_index = PositionalIndex()
        self._by_concept: Dict[int, Set[int]] = {}
        for citation in medline.iter_citations():
            self._title_index.add_document(citation.pmid, citation.title)
            self._abstract_index.add_document(citation.pmid, citation.abstract)
            for concept in set(citation.concepts):
                self._by_concept.setdefault(concept, set()).add(citation.pmid)
        self._universe: Set[int] = set(medline.pmids())

    # ------------------------------------------------------------------
    def search(self, query: str) -> Set[int]:
        """Evaluate a query string; returns the matching PMIDs.

        Raises:
            QuerySyntaxError: on malformed queries.
        """
        return self.evaluate(parse_query(query))

    def evaluate(self, node: Node) -> Set[int]:
        """Evaluate a parsed query AST."""
        if isinstance(node, Term):
            return self._evaluate_term(node)
        if isinstance(node, And):
            left = self.evaluate(node.left)
            if not left:
                return set()
            return left & self.evaluate(node.right)
        if isinstance(node, Or):
            return self.evaluate(node.left) | self.evaluate(node.right)
        if isinstance(node, Not):
            return self._universe - self.evaluate(node.operand)
        raise TypeError("unknown query node %r" % (node,))

    # ------------------------------------------------------------------
    def _evaluate_term(self, term: Term) -> Set[int]:
        if term.field == "mh":
            return self._mesh_matches(term.text, explode=True)
        if term.field == "mh:noexp":
            return self._mesh_matches(term.text, explode=False)
        searchers = []
        if term.field in ("ti", "all"):
            searchers.append(self._title_index)
        if term.field in ("ab", "all"):
            searchers.append(self._abstract_index)
        matches: Set[int] = set()
        for index in searchers:
            if term.phrase:
                matches |= index.search_phrase(term.text)
            else:
                matches |= index.search_term(term.text)
        return matches

    def _mesh_matches(self, label: str, explode: bool) -> Set[int]:
        """Citations annotated with the named concept.

        With ``explode`` (plain ``[mh]``), descendants count too, as in
        PubMed's automatic explosion; ``[mh:noexp]`` matches only the
        concept itself.  Label matching is case-insensitive on the full
        heading; an unknown heading matches nothing (as in PubMed when
        translation fails).
        """
        concept = self._find_concept(label)
        if concept is None:
            return set()
        if not explode:
            return set(self._by_concept.get(concept, set()))
        matches: Set[int] = set()
        for node in self._hierarchy.iter_dfs(concept):
            matches |= self._by_concept.get(node, set())
        return matches

    def _find_concept(self, label: str) -> Optional[int]:
        wanted = label.strip().lower()
        try:
            return self._hierarchy.by_label(label)
        except KeyError:
            pass
        for node in range(len(self._hierarchy)):
            if self._hierarchy.label(node).lower() == wanted:
                return node
        return None


class FieldedEngineAdapter:
    """Adapt :class:`FieldedSearchEngine` to the plain-engine interface.

    The simulated :class:`~repro.eutils.client.EntrezClient` consumes a
    ``search(term) → QueryResult`` engine; this adapter lets it serve
    fielded queries (in particular the ``[mh:noexp]`` concept queries the
    off-line harvester issues).  Results are ranked by ascending PMID —
    field queries carry no TF-IDF signal.
    """

    def __init__(self, engine: FieldedSearchEngine):
        self._engine = engine

    def search(self, query: str) -> "QueryResult":
        """Evaluate ``query`` and wrap the matches as a QueryResult."""
        from repro.search.engine import QueryResult

        pmids = tuple(sorted(self._engine.search(query)))
        return QueryResult(query=query, pmids=pmids)
