"""PubMed-style query language: booleans, phrases, and field tags.

BioNav's front door is a PubMed keyword box, and real PubMed queries go
beyond bare conjunctions: biologists write things like::

    prothymosin AND (apoptosis[mh] OR "cell proliferation") NOT review[ti]

This module parses that surface into an AST and evaluates it against the
simulated corpus:

* ``AND`` / ``OR`` / ``NOT`` (left-associative; ``AND`` binds tighter than
  ``OR``; bare juxtaposition means ``AND``, as in PubMed),
* parentheses,
* quoted phrases (matched as ordered adjacent tokens), and
* field tags — ``term[ti]`` (title), ``term[ab]`` (abstract),
  ``term[mh]`` (MeSH concept annotation, exploded to descendants),
  ``term[mh:noexp]`` (the annotation alone, no explosion), and
  ``term[all]``/untagged (any text field).

Grammar::

    query   := or_expr
    or_expr := and_expr (OR and_expr)*
    and_expr:= unary ((AND)? unary)*        # juxtaposition is AND
    unary   := NOT unary | atom
    atom    := '(' query ')' | term
    term    := PHRASE tag? | WORD tag?
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple, Union

__all__ = [
    "QuerySyntaxError",
    "Term",
    "And",
    "Or",
    "Not",
    "parse_query",
    "format_query",
]


class QuerySyntaxError(ValueError):
    """Raised on malformed query strings."""


VALID_FIELDS = ("all", "ti", "ab", "mh", "mh:noexp")


@dataclass(frozen=True)
class Term:
    """A single search term or quoted phrase, optionally field-tagged.

    Attributes:
        text: the raw term or phrase (unquoted).
        field: one of ``all``, ``ti``, ``ab``, ``mh``.
        phrase: True when the term was quoted (ordered-adjacency match).
    """

    text: str
    field: str = "all"
    phrase: bool = False

    def __post_init__(self) -> None:
        if self.field not in VALID_FIELDS:
            raise QuerySyntaxError("unknown field tag [%s]" % self.field)
        if not self.text.strip():
            raise QuerySyntaxError("empty search term")


@dataclass(frozen=True)
class And:
    left: "Node"
    right: "Node"


@dataclass(frozen=True)
class Or:
    left: "Node"
    right: "Node"


@dataclass(frozen=True)
class Not:
    operand: "Node"


Node = Union[Term, And, Or, Not]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        \( | \)                              # parens
      | "(?P<phrase>[^"]*)"                  # quoted phrase
      | \[(?P<field>[A-Za-z:]+)\]            # field tag
      | (?P<word>[^\s()\[\]"]+)              # bare word (incl. AND/OR/NOT)
    )
    """,
    re.VERBOSE,
)


def _tokenize(query: str) -> List[Tuple[str, str]]:
    """Token stream: (kind, value) with kinds lparen/rparen/phrase/field/word."""
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(query):
        match = _TOKEN_RE.match(query, position)
        if match is None:
            if query[position:].strip() == "":
                break
            raise QuerySyntaxError(
                "cannot tokenize query at position %d: %r" % (position, query[position:])
            )
        position = match.end()
        if match.group("phrase") is not None:
            tokens.append(("phrase", match.group("phrase")))
        elif match.group("field") is not None:
            tokens.append(("field", match.group("field").lower()))
        elif match.group("word") is not None:
            tokens.append(("word", match.group("word")))
        else:
            text = match.group(1)
            tokens.append(("lparen" if text == "(" else "rparen", text))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self._tokens = tokens
        self._position = 0

    # ------------------------------------------------------------------
    def parse(self) -> Node:
        node = self._or_expr()
        if not self._at_end():
            raise QuerySyntaxError(
                "unexpected token %r after end of query" % (self._peek()[1],)
            )
        return node

    # ------------------------------------------------------------------
    def _or_expr(self) -> Node:
        node = self._and_expr()
        while self._is_keyword("OR"):
            self._advance()
            node = Or(node, self._and_expr())
        return node

    def _and_expr(self) -> Node:
        node = self._unary()
        while True:
            if self._is_keyword("AND"):
                self._advance()
                node = And(node, self._unary())
                continue
            if self._starts_atom():
                # Juxtaposition: "prothymosin apoptosis" means AND.
                node = And(node, self._unary())
                continue
            return node

    def _unary(self) -> Node:
        if self._is_keyword("NOT"):
            self._advance()
            return Not(self._unary())
        return self._atom()

    def _atom(self) -> Node:
        if self._at_end():
            raise QuerySyntaxError("unexpected end of query")
        kind, value = self._peek()
        if kind == "lparen":
            self._advance()
            node = self._or_expr()
            if self._at_end() or self._peek()[0] != "rparen":
                raise QuerySyntaxError("missing closing parenthesis")
            self._advance()
            return node
        if kind == "phrase":
            self._advance()
            return Term(text=value, field=self._maybe_field(), phrase=True)
        if kind == "word":
            if value.upper() in ("AND", "OR", "NOT"):
                raise QuerySyntaxError("operator %r cannot start a term" % value)
            self._advance()
            return Term(text=value, field=self._maybe_field(), phrase=False)
        raise QuerySyntaxError("unexpected token %r" % (value,))

    def _maybe_field(self) -> str:
        if not self._at_end() and self._peek()[0] == "field":
            field = self._peek()[1]
            self._advance()
            if field not in VALID_FIELDS:
                raise QuerySyntaxError("unknown field tag [%s]" % field)
            return field
        return "all"

    # ------------------------------------------------------------------
    def _starts_atom(self) -> bool:
        if self._at_end():
            return False
        kind, value = self._peek()
        if kind in ("phrase", "lparen"):
            return True
        if kind == "word":
            return value.upper() != "OR" and value.upper() != "AND"
        return False

    def _is_keyword(self, keyword: str) -> bool:
        if self._at_end():
            return False
        kind, value = self._peek()
        return kind == "word" and value.upper() == keyword

    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._position]

    def _advance(self) -> None:
        self._position += 1

    def _at_end(self) -> bool:
        return self._position >= len(self._tokens)


def parse_query(query: str) -> Node:
    """Parse a PubMed-style query string into an AST.

    Raises:
        QuerySyntaxError: on malformed input (including the empty query).
    """
    tokens = _tokenize(query)
    if not tokens:
        raise QuerySyntaxError("empty query")
    return _Parser(tokens).parse()


def format_query(node: Node) -> str:
    """Render an AST back to query-string syntax.

    The output is fully parenthesized below the top level and always uses
    explicit ``AND``, so ``parse_query(format_query(x))`` reproduces ``x``
    for every AST (round-trip property-tested).
    """
    if isinstance(node, Term):
        text = '"%s"' % node.text if node.phrase else node.text
        return text if node.field == "all" else "%s[%s]" % (text, node.field)
    if isinstance(node, And):
        return "(%s AND %s)" % (format_query(node.left), format_query(node.right))
    if isinstance(node, Or):
        return "(%s OR %s)" % (format_query(node.left), format_query(node.right))
    if isinstance(node, Not):
        return "(NOT %s)" % format_query(node.operand)
    raise TypeError("unknown query node %r" % (node,))
