"""TF-IDF ranking of keyword-search results.

BioNav augments categorization with "simple ranking techniques" (paper §I);
the simulated ESearch returns result PMIDs ranked by a standard
log-scaled TF-IDF score over titles and abstracts, with recency as the tie
breaker (PubMed's default sort is effectively most-recent-first).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.storage import InvertedIndex, tokenize

__all__ = ["tf_idf_score", "rank_results"]


def tf_idf_score(index: InvertedIndex, doc_id: int, terms: Sequence[str]) -> float:
    """Sum over query terms of log-TF × IDF for one document.

    Uses ``(1 + log tf) * log((N + 1) / (df + 1))`` with natural logs; a
    term absent from the document contributes zero.
    """
    n_docs = len(index)
    score = 0.0
    for term, tf in zip(terms, index.term_frequencies(doc_id, terms)):
        if tf == 0:
            continue
        df = index.document_frequency(term)
        idf = math.log((n_docs + 1) / (df + 1))
        score += (1.0 + math.log(tf)) * idf
    return score


def rank_results(
    index: InvertedIndex,
    doc_ids: Sequence[int],
    query: str,
    years: Dict[int, int],
) -> List[int]:
    """Order ``doc_ids`` by descending TF-IDF, then recency, then PMID."""
    terms = tokenize(query)
    scored: List[Tuple[float, int, int]] = []
    for doc_id in doc_ids:
        score = tf_idf_score(index, doc_id, terms)
        scored.append((score, years.get(doc_id, 0), doc_id))
    scored.sort(key=lambda item: (-item[0], -item[1], item[2]))
    return [doc_id for _, _, doc_id in scored]
