"""Keyword query engine over the simulated MEDLINE corpus.

This is the server-side piece PubMed provides in the paper's architecture:
given a keyword query it returns the matching citation IDs, ranked.  The
simulated eutils client (``repro.eutils.client``) wraps this engine with the
ESearch wire-level conventions (retstart/retmax paging, counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.corpus.medline import MedlineDatabase
from repro.search.ranking import rank_results
from repro.storage.index import InvertedIndex

__all__ = ["QueryResult", "SearchEngine"]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one keyword query.

    Attributes:
        query: the query string as submitted.
        pmids: matching citation IDs in rank order.
    """

    query: str
    pmids: Tuple[int, ...]

    @property
    def count(self) -> int:
        """Number of matching citations."""
        return len(self.pmids)


class SearchEngine:
    """Conjunctive keyword search with TF-IDF ranking."""

    def __init__(self, medline: MedlineDatabase, index: InvertedIndex):
        self._medline = medline
        self._index = index
        self._years: Dict[int, int] = {
            citation.pmid: citation.year for citation in medline.iter_citations()
        }

    @classmethod
    def from_medline(cls, medline: MedlineDatabase) -> "SearchEngine":
        """Build the index from scratch over a corpus."""
        index = InvertedIndex()
        for citation in medline.iter_citations():
            index.add_document(citation.pmid, citation.searchable_text())
        return cls(medline, index)

    def search(self, query: str) -> QueryResult:
        """All citations matching every query term, ranked."""
        matches = self._index.search(query)
        ranked = rank_results(self._index, sorted(matches), query, self._years)
        return QueryResult(query=query, pmids=tuple(ranked))

    def __len__(self) -> int:
        return len(self._medline)
