"""Keyword query engine over the simulated MEDLINE corpus.

This is the server-side piece PubMed provides in the paper's architecture:
given a query it returns the matching citation IDs, ranked.  The simulated
eutils client (``repro.eutils.client``) wraps this engine with the ESearch
wire-level conventions (retstart/retmax paging, counts).

Two query surfaces coexist, as in real PubMed:

* **free-text terms** — conjunctive retrieval over the inverted keyword
  index with TF-IDF ranking (toy-scale corpora only; the index is an
  in-memory structure);
* **field-tagged concept terms** — ``term[mh]`` restricts to citations
  associated with the MeSH concept ``term`` (a node id, a concept uid
  like ``D000123``, or a label when a hierarchy is attached).  These
  resolve through the :class:`~repro.substrate.store.CorpusStore`
  boolean-AND path, which the mmap backend answers with compressed
  bitmap intersections — the query shape the substrate bench gates at
  1M citations.

A query may mix both; the result is the intersection, ranked by the
text score when text terms are present and in ascending-PMID order for
pure concept queries (identical across store backends).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.search.ranking import rank_results
from repro.storage import InvertedIndex
from repro.substrate.store import CorpusStore, InMemoryStore

__all__ = ["QueryResult", "SearchEngine"]

#: ``term[mh]`` — PubMed's MeSH field tag, case-insensitive.  The term
#: is everything up to the tag, so labels with spaces work: ``"Kinase,
#: Alpha (L1-0001)[mh]"``.
_MH_RE = re.compile(r"\s*([^\[\]]+?)\s*\[mh\]", re.IGNORECASE)


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one keyword query.

    Attributes:
        query: the query string as submitted.
        pmids: matching citation IDs in rank order.
    """

    query: str
    pmids: Tuple[int, ...]

    @property
    def count(self) -> int:
        """Number of matching citations."""
        return len(self.pmids)


class SearchEngine:
    """Conjunctive retrieval: TF-IDF-ranked text plus ``[mh]`` concepts.

    Args:
        store: a :class:`CorpusStore`, or a bare :class:`MedlineDatabase`
            (wrapped in an :class:`InMemoryStore` for compatibility).
        index: inverted keyword index for free-text terms; when absent,
            free-text terms raise :class:`ValueError` (the mmap backend
            carries no text index — concept queries only).
        hierarchy: resolves uid/label concept terms; node-id terms work
            without it.
    """

    def __init__(
        self,
        store: "CorpusStore | MedlineDatabase",
        index: Optional[InvertedIndex] = None,
        hierarchy: Optional[ConceptHierarchy] = None,
    ):
        if isinstance(store, MedlineDatabase):
            store = InMemoryStore(store)
        if not isinstance(store, CorpusStore):
            raise TypeError("store must be a CorpusStore or MedlineDatabase")
        self._store = store
        self._index = index
        self._hierarchy = hierarchy if hierarchy is not None else store.hierarchy()
        self._years: Optional[Dict[int, int]] = None

    @classmethod
    def from_medline(cls, medline: MedlineDatabase) -> "SearchEngine":
        """Build the text index from scratch over a toy corpus."""
        index = InvertedIndex()
        for citation in medline.iter_citations():
            index.add_document(citation.pmid, citation.searchable_text())
        return cls(medline, index)

    @classmethod
    def from_store(
        cls, store: CorpusStore, hierarchy: Optional[ConceptHierarchy] = None
    ) -> "SearchEngine":
        """Concept-query engine over a built store (no text index)."""
        return cls(store, index=None, hierarchy=hierarchy)

    @property
    def store(self) -> CorpusStore:
        """The corpus store queries resolve against."""
        return self._store

    # ------------------------------------------------------------------
    def search(self, query: str) -> QueryResult:
        """All citations matching every term, ranked.

        Raises:
            ValueError: free-text terms without a text index, or an
                unresolvable ``[mh]`` term.
        """
        concepts, text = self._parse(query)
        concept_hits: Optional[List[int]] = None
        if concepts is not None:
            concept_hits = [int(p) for p in self._store.boolean_and(concepts)]

        if not text.strip():
            pmids = concept_hits if concept_hits is not None else []
            return QueryResult(query=query, pmids=tuple(pmids))

        if self._index is None:
            raise ValueError(
                "free-text terms need a keyword index; this engine serves "
                "[mh] concept queries only"
            )
        matches = self._index.search(text)
        if concept_hits is not None:
            matches = matches & set(concept_hits)
        ranked = rank_results(self._index, sorted(matches), text, self._year_map())
        return QueryResult(query=query, pmids=tuple(ranked))

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------
    def _parse(self, query: str) -> Tuple[Optional[List[int]], str]:
        """Split a query into resolved ``[mh]`` concept ids + text rest."""
        concepts: List[int] = []
        seen = False
        for match in _MH_RE.finditer(query):
            seen = True
            concepts.append(self._resolve_concept(match.group(1)))
        text = _MH_RE.sub(" ", query)
        return (concepts if seen else None), text

    def _resolve_concept(self, term: str) -> int:
        """Node id for one ``[mh]`` term (id, uid, or label)."""
        if term.isdigit():
            concept = int(term)
            if 0 <= concept < self._store.num_concepts:
                return concept
            raise ValueError("concept id %d outside the corpus universe" % concept)
        if self._hierarchy is not None:
            for lookup in (self._hierarchy.by_uid, self._hierarchy.by_label):
                try:
                    return lookup(term)
                except KeyError:
                    pass
        raise ValueError("unresolvable [mh] term %r" % term)

    def _year_map(self) -> Dict[int, int]:
        """pmid → year for ranking tie-breaks, built on first text query."""
        if self._years is None:
            self._years = {
                citation.pmid: citation.year
                for citation in self._store.iter_citations()
            }
        return self._years
