"""Unit tests for repro.search (engine + ranking)."""

from __future__ import annotations

import pytest

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.search.engine import SearchEngine
from repro.search.ranking import rank_results, tf_idf_score
from repro.storage.index import InvertedIndex


def citation(pmid, title, abstract="", year=2000):
    return Citation(pmid=pmid, title=title, abstract=abstract, year=year)


@pytest.fixture()
def medline() -> MedlineDatabase:
    db = MedlineDatabase()
    db.add_all(
        [
            citation(1, "prothymosin in apoptosis", "prothymosin prothymosin", 1999),
            citation(2, "apoptosis pathways", "necrosis and death", 2005),
            citation(3, "prothymosin overview", "a survey", 2005),
            citation(4, "unrelated kinase work", "kinase kinase", 2001),
        ]
    )
    return db


@pytest.fixture()
def engine(medline) -> SearchEngine:
    return SearchEngine.from_medline(medline)


class TestSearchEngine:
    def test_single_term_query(self, engine):
        result = engine.search("prothymosin")
        assert set(result.pmids) == {1, 3}
        assert result.count == 2

    def test_conjunctive_query(self, engine):
        result = engine.search("prothymosin apoptosis")
        assert set(result.pmids) == {1}

    def test_no_results(self, engine):
        assert engine.search("histone").count == 0

    def test_ranking_prefers_higher_tf(self, engine):
        # pmid 1 mentions prothymosin three times; pmid 3 once.
        result = engine.search("prothymosin")
        assert result.pmids[0] == 1

    def test_corpus_size(self, engine):
        assert len(engine) == 4


class TestRanking:
    def test_tf_idf_zero_for_absent_term(self):
        index = InvertedIndex()
        index.add_document(1, "alpha beta")
        assert tf_idf_score(index, 1, ["gamma"]) == 0.0

    def test_tf_idf_increases_with_tf(self):
        index = InvertedIndex()
        index.add_document(1, "alpha")
        index.add_document(2, "alpha alpha alpha")
        index.add_document(3, "beta")
        low = tf_idf_score(index, 1, ["alpha"])
        high = tf_idf_score(index, 2, ["alpha"])
        assert high > low > 0

    def test_rare_terms_weigh_more(self):
        index = InvertedIndex()
        index.add_document(1, "common rare")
        index.add_document(2, "common")
        index.add_document(3, "common")
        rare = tf_idf_score(index, 1, ["rare"])
        common = tf_idf_score(index, 1, ["common"])
        assert rare > common

    def test_rank_breaks_ties_by_recency_then_pmid(self):
        index = InvertedIndex()
        index.add_document(1, "alpha")
        index.add_document(2, "alpha")
        index.add_document(3, "alpha")
        ranked = rank_results(index, [1, 2, 3], "alpha", years={1: 1990, 2: 2008, 3: 2008})
        assert ranked == [2, 3, 1]
