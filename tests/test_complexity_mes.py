"""Unit tests for repro.complexity.mes."""

from __future__ import annotations

import pytest

from repro.complexity.mes import MESInstance, mes_best_subset, mes_decision, mes_optimum


@pytest.fixture()
def triangle_plus_one() -> MESInstance:
    # Triangle 1-2-3 with weights 5, 3, 2; vertex 4 attached to 1 with 10.
    return MESInstance.from_edges(
        vertices=[1, 2, 3, 4],
        edges=[(1, 2, 5), (2, 3, 3), (1, 3, 2), (1, 4, 10)],
    )


class TestInstance:
    def test_subset_weight(self, triangle_plus_one):
        assert triangle_plus_one.subset_weight({1, 2}) == 5
        assert triangle_plus_one.subset_weight({1, 2, 3}) == 10
        assert triangle_plus_one.subset_weight({1, 4}) == 10
        assert triangle_plus_one.subset_weight({2, 4}) == 0

    def test_parallel_edges_merge(self):
        inst = MESInstance.from_edges([1, 2], [(1, 2, 3), (2, 1, 4)])
        assert inst.subset_weight({1, 2}) == 7

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            MESInstance(vertices=(1, 2), weights={frozenset({1}): 3})

    def test_rejects_unknown_vertices(self):
        with pytest.raises(ValueError):
            MESInstance(vertices=(1, 2), weights={frozenset({1, 9}): 3})

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            MESInstance(vertices=(1, 2), weights={frozenset({1, 2}): 0})

    def test_rejects_duplicate_vertices(self):
        with pytest.raises(ValueError):
            MESInstance(vertices=(1, 1), weights={})


class TestSolvers:
    def test_best_subset_k2(self, triangle_plus_one):
        subset, weight = mes_best_subset(triangle_plus_one, 2)
        assert weight == 10
        assert subset == {1, 4}

    def test_best_subset_k3(self, triangle_plus_one):
        subset, weight = mes_best_subset(triangle_plus_one, 3)
        # {1,2,4}: 5+10 = 15 beats the triangle's 10.
        assert weight == 15
        assert subset == {1, 2, 4}

    def test_optimum_k0_and_k1_are_zero(self, triangle_plus_one):
        assert mes_optimum(triangle_plus_one, 0) == 0
        assert mes_optimum(triangle_plus_one, 1) == 0

    def test_decision(self, triangle_plus_one):
        assert mes_decision(triangle_plus_one, 2, 10)
        assert not mes_decision(triangle_plus_one, 2, 11)

    def test_k_out_of_range(self, triangle_plus_one):
        with pytest.raises(ValueError):
            mes_best_subset(triangle_plus_one, 5)
        with pytest.raises(ValueError):
            mes_best_subset(triangle_plus_one, -1)
