"""Unit tests for repro.core.probabilities."""

from __future__ import annotations

import math

import pytest

from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.concept import ConceptHierarchy


def build_tree(annotations):
    h = ConceptHierarchy(root_label="root")
    a = h.add_child(0, "a")       # 1
    b = h.add_child(a, "b")       # 2
    c = h.add_child(a, "c")       # 3
    d = h.add_child(0, "d")       # 4
    return NavigationTree.build(h, annotations)


@pytest.fixture()
def tree():
    return build_tree(
        {
            1: set(range(0, 10)),    # |L| = 10
            2: set(range(5, 25)),    # |L| = 20
            3: set(range(20, 30)),   # |L| = 10
            4: set(range(0, 5)),     # |L| = 5
        }
    )


def flat_counts(node: int) -> int:
    return 1000


class TestExploreProbability:
    def test_sums_to_one_over_tree(self, tree):
        probs = ProbabilityModel(tree, flat_counts)
        total = sum(probs.explore_node(n) for n in tree.iter_dfs())
        assert total == pytest.approx(1.0)

    def test_empty_root_has_zero_mass(self, tree):
        probs = ProbabilityModel(tree, flat_counts)
        assert probs.explore_node(tree.root) == 0.0

    def test_proportional_to_result_count_with_flat_lt(self, tree):
        probs = ProbabilityModel(tree, flat_counts)
        assert probs.explore_node(2) == pytest.approx(2 * probs.explore_node(1))

    def test_idf_discounts_globally_common_concepts(self, tree):
        # Same |L|, but node 3 is MEDLINE-ubiquitous → lower pE than node 1.
        def counts(node):
            return 1_000_000 if node == 3 else 100

        probs = ProbabilityModel(tree, counts)
        assert probs.explore_node(3) < probs.explore_node(1)

    def test_component_probability_is_sum(self, tree):
        probs = ProbabilityModel(tree, flat_counts)
        expected = probs.explore_node(1) + probs.explore_node(2)
        assert probs.explore([1, 2]) == pytest.approx(expected)

    def test_whole_tree_component_has_probability_one(self, tree):
        probs = ProbabilityModel(tree, flat_counts)
        assert probs.explore(tree.iter_dfs()) == pytest.approx(1.0)

    def test_tiny_lt_clamped(self, tree):
        # LT of 0 or 1 would zero/negate the log; it must be clamped.
        probs = ProbabilityModel(tree, lambda n: 0)
        assert probs.explore_node(1) > 0
        assert math.isfinite(probs.explore_node(1))

    def test_explore_mass_unnormalized(self, tree):
        probs = ProbabilityModel(tree, flat_counts)
        assert probs.explore_mass(1) == pytest.approx(10 / math.log(1000))


class TestExpandProbability:
    def test_singleton_never_expands(self, tree):
        probs = ProbabilityModel(tree, flat_counts)
        assert probs.expand(frozenset({2}), 2) == 0.0

    def test_big_components_always_expand(self, tree):
        probs = ProbabilityModel(tree, flat_counts, upper_threshold=20)
        component = frozenset(tree.iter_dfs())
        assert probs.expand(component, tree.root) == 1.0

    def test_small_components_never_expand(self, tree):
        probs = ProbabilityModel(tree, flat_counts, lower_threshold=10)
        component = frozenset({3, 4})  # R = |20..29 ∪ 0..4| = 15 ... above
        small = frozenset({4})
        assert probs.expand(small, 4) == 0.0

    def test_entropy_band_between_thresholds(self, tree):
        probs = ProbabilityModel(tree, flat_counts, upper_threshold=100, lower_threshold=1)
        component = frozenset({1, 2, 3})
        value = probs.expand(component, 1)
        assert 0.0 < value <= 1.0

    def test_uniform_distribution_gives_high_entropy(self):
        probs_tree = build_tree({1: {1}, 2: {2}, 3: {3}, 4: {4}})
        probs = ProbabilityModel(probs_tree, flat_counts, upper_threshold=100, lower_threshold=1)
        assert probs.expand_from_distribution([5, 5, 5, 5], 20) == pytest.approx(1.0)

    def test_skewed_distribution_gives_low_entropy(self):
        probs_tree = build_tree({1: {1}, 2: {2}, 3: {3}, 4: {4}})
        probs = ProbabilityModel(probs_tree, flat_counts, upper_threshold=100, lower_threshold=1)
        skewed = probs.expand_from_distribution([97, 1, 1, 1], 40)
        uniform = probs.expand_from_distribution([25, 25, 25, 25], 40)
        assert skewed < uniform

    def test_duplicates_clamped_to_one(self):
        probs_tree = build_tree({1: {1}, 2: {2}, 3: {3}, 4: {4}})
        probs = ProbabilityModel(probs_tree, flat_counts, upper_threshold=100, lower_threshold=1)
        # Heavy duplication: member counts sum far above distinct count.
        assert probs.expand_from_distribution([30, 30, 30], 35) <= 1.0

    def test_zero_members_zero(self):
        probs_tree = build_tree({1: {1}, 2: {2}, 3: {3}, 4: {4}})
        probs = ProbabilityModel(probs_tree, flat_counts, upper_threshold=100, lower_threshold=1)
        assert probs.expand_from_distribution([0, 0], 15) == 0.0


class TestThresholdBoundaries:
    """Exact boundary semantics of the 50/10 thresholds (paper §IV)."""

    def _probs(self, tree):
        return ProbabilityModel(tree, flat_counts, upper_threshold=50, lower_threshold=10)

    def test_exactly_upper_uses_entropy_not_one(self, tree):
        probs = self._probs(tree)
        # R == upper: "greater than an upper threshold" is strict.
        value = probs.expand_from_distribution([25, 25], 50)
        assert value < 1.0 or value == pytest.approx(1.0)  # entropy may reach 1
        # But R just above upper is certainly 1.
        assert probs.expand_from_distribution([1, 1], 51) == 1.0

    def test_exactly_lower_uses_entropy_not_zero(self, tree):
        probs = self._probs(tree)
        assert probs.expand_from_distribution([5, 5], 10) > 0.0
        assert probs.expand_from_distribution([5, 4], 9) == 0.0

    def test_between_thresholds_is_entropy(self, tree):
        probs = self._probs(tree)
        uniform = probs.expand_from_distribution([10, 10], 20)
        skewed = probs.expand_from_distribution([19, 1], 20)
        assert 0 < skewed < uniform <= 1.0


class TestIdfAblationFlag:
    def test_without_idf_mass_is_result_count(self, tree):
        probs = ProbabilityModel(tree, flat_counts, use_idf=False)
        assert probs.explore_mass(2) == pytest.approx(20.0)

    def test_idf_changes_relative_weights(self, tree):
        def counts(node):
            return 1_000_000 if node == 3 else 100

        with_idf = ProbabilityModel(tree, counts, use_idf=True)
        without_idf = ProbabilityModel(tree, counts, use_idf=False)
        # Nodes 1 and 3 have equal |L|; only the IDF variant separates them.
        assert without_idf.explore_node(1) == pytest.approx(without_idf.explore_node(3))
        assert with_idf.explore_node(1) > with_idf.explore_node(3)

    def test_both_variants_are_distributions(self, tree):
        for use_idf in (True, False):
            probs = ProbabilityModel(tree, flat_counts, use_idf=use_idf)
            assert sum(probs.explore_node(n) for n in tree.iter_dfs()) == pytest.approx(1.0)


class TestThresholdValidation:
    def test_bad_thresholds_rejected(self, tree):
        with pytest.raises(ValueError):
            ProbabilityModel(tree, flat_counts, upper_threshold=5, lower_threshold=10)
        with pytest.raises(ValueError):
            ProbabilityModel(tree, flat_counts, lower_threshold=-1)

    def test_paper_defaults(self, tree):
        probs = ProbabilityModel(tree, flat_counts)
        assert probs.upper_threshold == 50
        assert probs.lower_threshold == 10
