"""Bitmask Opt-EdgeCut engine vs the exhaustive reference oracle.

The bitmask engine must be *observationally identical* to the retained
legacy implementation: same cut edges, same expected cost and expansion
term (bit for bit), same enumeration order, and a memo that answers every
component the reference solves.  These tests enforce that on a seeded
randomized sweep of navigation-tree components up to ``MAX_OPT_NODES``
nodes plus hand-built supernode trees like the ones Heuristic-ReducedOpt
produces.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import MAX_OPT_NODES, CutTree, OptEdgeCut
from repro.core.opt_edgecut_reference import ReferenceOptEdgeCut
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.concept import ConceptHierarchy


def random_scenario(size: int, seed: int):
    """A random ``size``-node navigation tree lifted into a CutTree."""
    rng = random.Random(seed)
    h = ConceptHierarchy(root_label="r")
    nodes = [0]
    for i in range(size - 1):
        nodes.append(h.add_child(rng.choice(nodes), "c%d" % i))
    annotations = {
        n: set(rng.sample(range(120), rng.randint(1, 25))) for n in nodes
    }
    tree = NavigationTree.build(h, annotations)
    probs = ProbabilityModel(tree, lambda n: 500)
    component = frozenset(tree.iter_dfs())
    return CutTree.from_component(tree, probs, component, tree.root), probs


def supernode_cut_tree(seed: int, size: int) -> CutTree:
    """A CutTree with multi-member supernodes (reduced-tree shape)."""
    rng = random.Random(seed)
    children = [[] for _ in range(size)]
    for node in range(1, size):
        children[rng.randrange(node)].append(node)
    results = []
    member_counts = []
    for _ in range(size):
        counts = [rng.randint(1, 8) for _ in range(rng.randint(1, 4))]
        member_counts.append(counts)
        results.append(frozenset(rng.sample(range(200), sum(counts))))
    return CutTree(
        children=children,
        results=results,
        explore=[rng.uniform(0.2, 5.0) for _ in range(size)],
        member_counts=member_counts,
        payload=list(range(size)),
    )


@pytest.fixture(scope="module")
def shared_probs():
    """A probability model for raw CutTrees.

    ``expand_from_distribution`` only reads component statistics, so the
    host tree is irrelevant for hand-built CutTrees.
    """
    h = ConceptHierarchy(root_label="root")
    h.add_child(0, "a")
    tree = NavigationTree.build(h, {1: set(range(30))})
    return ProbabilityModel(tree, lambda n: 1000)


class TestEngineEquivalence:
    # Four chunks of 55 seeded trees = 220 random instances.
    @pytest.mark.parametrize("chunk", range(4))
    def test_best_cut_identical_on_random_trees(self, chunk):
        params = CostParams()
        for trial in range(55):
            seed = chunk * 55 + trial
            rng = random.Random(seed)
            size = rng.randint(2, 13)
            cut_tree, probs = random_scenario(size, 9000 + seed)
            new = OptEdgeCut(cut_tree, probs, params).solve()
            old = ReferenceOptEdgeCut(cut_tree, probs, params).solve()
            assert new.cut == old.cut, "seed %d" % seed
            assert new.expected_cost == old.expected_cost, "seed %d" % seed
            assert new.expansion_term == old.expansion_term, "seed %d" % seed

    def test_best_cut_identical_at_max_size(self):
        """A few instances at the MAX_OPT_NODES ceiling."""
        params = CostParams()
        for seed in range(3):
            cut_tree, probs = random_scenario(MAX_OPT_NODES, 500 + seed)
            assert len(cut_tree) == MAX_OPT_NODES
            new = OptEdgeCut(cut_tree, probs, params).solve()
            old = ReferenceOptEdgeCut(cut_tree, probs, params).solve()
            assert new == old

    def test_best_cut_identical_on_supernode_trees(self, shared_probs):
        """Reduced-tree shapes: multi-member member_counts histograms."""
        params = CostParams()
        for seed in range(40):
            rng = random.Random(seed)
            cut_tree = supernode_cut_tree(3000 + seed, rng.randint(2, 10))
            new = OptEdgeCut(cut_tree, shared_probs, params).solve()
            old = ReferenceOptEdgeCut(cut_tree, shared_probs, params).solve()
            assert new == old, "seed %d" % seed

    def test_nonuniform_costs_agree(self, shared_probs):
        """Equivalence must not depend on the default unit costs."""
        params = CostParams(expand_cost=2.5, reveal_cost=0.75, citation_cost=1.5)
        for seed in range(20):
            cut_tree, probs = random_scenario(2 + seed % 11, 40_000 + seed)
            new = OptEdgeCut(cut_tree, probs, params).solve()
            old = ReferenceOptEdgeCut(cut_tree, probs, params).solve()
            assert new == old, "seed %d" % seed

    def test_memo_covers_and_matches_reference(self):
        """Every component the bitmask engine memoizes, the reference
        solved too — with the identical BestCut.  (The bitmask memo can be
        a subset: pruning skips work the exhaustive engine does.)"""
        for seed in range(25):
            cut_tree, probs = random_scenario(2 + seed % 10, 60_000 + seed)
            new_solver = OptEdgeCut(cut_tree, probs)
            old_solver = ReferenceOptEdgeCut(cut_tree, probs)
            assert new_solver.solve() == old_solver.solve()
            reference_memo = dict(old_solver.memo_items())
            for component, best in new_solver.memo_items():
                assert component in reference_memo, "seed %d" % seed
                assert reference_memo[component] == best, "seed %d" % seed

    def test_chosen_cut_components_are_memoized(self):
        """The pruned search still fully solves the winning cut's
        components, so Heuristic-ReducedOpt's memo harvest keeps covering
        later EXPANDs."""
        cut_tree, probs = random_scenario(12, 777)
        solver = OptEdgeCut(cut_tree, probs)
        best = solver.solve()
        memo = {component for component, _ in solver.memo_items()}
        full = frozenset(range(len(cut_tree)))
        removed = set()
        for _, child in best.cut:
            lower = cut_tree.subtree_indices(child)
            assert lower in memo
            removed |= lower
        assert frozenset(full - removed) in memo

    def test_enumeration_order_matches_reference(self):
        """`_enumerate_cuts` (the compat surface explain.py uses) yields
        cuts in the exact legacy order."""
        for seed in (1, 2, 3, 4, 5):
            cut_tree, probs = random_scenario(8, 88_000 + seed)
            new_solver = OptEdgeCut(cut_tree, probs)
            old_solver = ReferenceOptEdgeCut(cut_tree, probs)
            component = frozenset(range(len(cut_tree)))
            assert new_solver._enumerate_cuts(0, component) == (
                old_solver._enumerate_cuts(0, component)
            )

    def test_expansion_term_matches_reference(self):
        """The compat `_expansion_term` agrees on every enumerated cut."""
        cut_tree, probs = random_scenario(7, 4242)
        new_solver = OptEdgeCut(cut_tree, probs)
        old_solver = ReferenceOptEdgeCut(cut_tree, probs)
        component = frozenset(range(len(cut_tree)))
        for cut in old_solver._enumerate_cuts(0, component):
            assert new_solver._expansion_term(component, 0, cut) == (
                old_solver._expansion_term(component, 0, cut)
            )

    def test_oversized_tree_rejected_by_both(self, shared_probs):
        cut_tree = supernode_cut_tree(1, MAX_OPT_NODES + 1)
        with pytest.raises(ValueError):
            OptEdgeCut(cut_tree, shared_probs)
        with pytest.raises(ValueError):
            ReferenceOptEdgeCut(cut_tree, shared_probs)
