"""Unit tests for the MEDLINE text (.nbib) parser/writer."""

from __future__ import annotations

import io

import pytest

from repro.corpus.citation import Citation
from repro.corpus.loader import (
    citations_from_records,
    dump_medline_text,
    load_medline_text,
    parse_medline_text,
)
from repro.hierarchy.mesh import paper_fragment

SAMPLE = """\
PMID- 17284678
TI  - Prothymosin alpha and cell proliferation in transformed
      cell lines.
AB  - We report that prothymosin alpha regulates chromatin
      remodelling in proliferating cells.
AU  - Smith A
AU  - Chen B
DP  - 2007 Feb 12
MH  - Apoptosis
MH  - *Cell Proliferation
MH  - Chromatin/metabolism

PMID- 9999999
TI  - A short one.
DP  - 1999
"""


class TestParse:
    def test_two_records(self):
        records = parse_medline_text(io.StringIO(SAMPLE))
        assert len(records) == 2
        assert records[0]["PMID"] == ["17284678"]
        assert records[1]["PMID"] == ["9999999"]

    def test_continuation_lines_folded(self):
        records = parse_medline_text(io.StringIO(SAMPLE))
        assert records[0]["TI"] == [
            "Prothymosin alpha and cell proliferation in transformed cell lines."
        ]

    def test_repeated_tags_accumulate(self):
        records = parse_medline_text(io.StringIO(SAMPLE))
        assert records[0]["AU"] == ["Smith A", "Chen B"]
        assert len(records[0]["MH"]) == 3

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_medline_text(io.StringIO("this is not a tagged line\n"))

    def test_empty_input(self):
        assert parse_medline_text(io.StringIO("")) == []


class TestCitations:
    def test_basic_fields(self):
        citations = load_medline_text(io.StringIO(SAMPLE))
        first = citations[0]
        assert first.pmid == 17284678
        assert first.authors == ("Smith A", "Chen B")
        assert first.year == 2007
        assert "chromatin" in first.abstract

    def test_mesh_resolution_against_hierarchy(self):
        hierarchy = paper_fragment()
        citations = load_medline_text(io.StringIO(SAMPLE), hierarchy=hierarchy)
        first = citations[0]
        labels = {hierarchy.label(c) for c in first.mesh_annotations}
        # Major-topic '*' and '/qualifier' forms resolve to plain headings.
        assert labels == {"Apoptosis", "Cell Proliferation", "Chromatin"}

    def test_unknown_heading_skipped_by_default(self):
        hierarchy = paper_fragment()
        text = "PMID- 1\nTI  - x\nMH  - Completely Unknown Heading\n"
        citations = load_medline_text(io.StringIO(text), hierarchy=hierarchy)
        assert citations[0].mesh_annotations == ()

    def test_unknown_heading_raises_in_strict_mode(self):
        hierarchy = paper_fragment()
        text = "PMID- 1\nTI  - x\nMH  - Completely Unknown Heading\n"
        with pytest.raises(ValueError):
            load_medline_text(io.StringIO(text), hierarchy=hierarchy, strict=True)

    def test_missing_pmid_raises(self):
        with pytest.raises(ValueError):
            citations_from_records([{"TI": ["x"]}])

    def test_missing_title_raises(self):
        with pytest.raises(ValueError):
            citations_from_records([{"PMID": ["3"]}])

    def test_year_defaults_when_unparseable(self):
        text = "PMID- 1\nTI  - x\nDP  - Spring\n"
        citations = load_medline_text(io.StringIO(text))
        assert citations[0].year == 1900


class TestRoundTrip:
    def test_dump_and_reload(self):
        hierarchy = paper_fragment()
        apoptosis = hierarchy.by_label("Apoptosis")
        histones = hierarchy.by_label("Histones")
        annotations = tuple(sorted((apoptosis, histones)))
        original = [
            Citation(
                pmid=42,
                title="A reasonably long title that will wrap across the eighty column limit set",
                abstract="An abstract with several words " * 5,
                authors=("Doe J", "Roe R"),
                year=2005,
                mesh_annotations=annotations,
                index_concepts=annotations,
            )
        ]
        buffer = io.StringIO()
        written = dump_medline_text(original, buffer, hierarchy=hierarchy)
        assert written == 1
        reloaded = load_medline_text(io.StringIO(buffer.getvalue()), hierarchy=hierarchy)
        assert reloaded[0].pmid == 42
        assert reloaded[0].title == original[0].title
        assert reloaded[0].abstract.split() == original[0].abstract.split()
        assert reloaded[0].mesh_annotations == original[0].mesh_annotations
        assert reloaded[0].authors == original[0].authors
        assert reloaded[0].year == 2005

    def test_wrapped_lines_stay_under_limit(self):
        citation = Citation(pmid=1, title="word " * 60)
        buffer = io.StringIO()
        dump_medline_text([citation], buffer)
        for line in buffer.getvalue().splitlines():
            assert len(line) <= 80
