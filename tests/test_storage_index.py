"""Unit tests for repro.storage.index."""

from __future__ import annotations

import pytest

from repro.storage.index import InvertedIndex, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Apoptosis Signaling") == ["apoptosis", "signaling"]

    def test_drops_stopwords(self):
        assert tokenize("the role of histones in cancer") == [
            "role",
            "histones",
            "cancer",
        ]

    def test_keeps_transporter_names(self):
        assert tokenize("Na+/I- symporter") == ["na+/i-", "symporter"]

    def test_keeps_hyphenated_terms(self):
        assert "beta-catenin" in tokenize("beta-catenin pathway")

    def test_numbers_survive(self):
        assert tokenize("syntaxin 1A binding") == ["syntaxin", "1a", "binding"]

    def test_empty_text(self):
        assert tokenize("") == []
        assert tokenize("the of and") == []


@pytest.fixture()
def index() -> InvertedIndex:
    idx = InvertedIndex()
    idx.add_document(1, "prothymosin alpha in apoptosis")
    idx.add_document(2, "apoptosis and necrosis in cancer")
    idx.add_document(3, "prothymosin expression prothymosin levels")
    return idx


class TestIndexing:
    def test_document_count(self, index):
        assert len(index) == 3

    def test_duplicate_doc_id_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document(1, "again")

    def test_postings_with_term_frequency(self, index):
        assert index.postings("prothymosin") == {1: 1, 3: 2}

    def test_document_frequency(self, index):
        assert index.document_frequency("apoptosis") == 2
        assert index.document_frequency("nosuchterm") == 0

    def test_doc_length_excludes_stopwords(self, index):
        assert index.doc_length(2) == 3  # "and"/"in" dropped

    def test_vocabulary_size(self, index):
        assert index.vocabulary_size >= 6


class TestSearch:
    def test_single_term(self, index):
        assert index.search("apoptosis") == {1, 2}

    def test_conjunctive_semantics(self, index):
        assert index.search("prothymosin apoptosis") == {1}

    def test_case_insensitive(self, index):
        assert index.search("PROTHYMOSIN") == {1, 3}

    def test_no_match(self, index):
        assert index.search("kinase") == set()

    def test_empty_query_matches_nothing(self, index):
        assert index.search("") == set()
        assert index.search("the of") == set()

    def test_term_frequencies_vector(self, index):
        assert index.term_frequencies(3, ["prothymosin", "apoptosis"]) == [2, 0]
