"""Cost-parameter plumbing through sessions and simulations."""

from __future__ import annotations

import pytest

from repro.core.cost_model import CostParams
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.session import NavigationSession
from repro.core.simulator import navigate_to_target
from repro.core.static_nav import StaticNavigation


@pytest.fixture()
def pricey() -> CostParams:
    return CostParams(expand_cost=5.0, reveal_cost=2.0, citation_cost=0.5)


class TestSessionParams:
    def test_session_charges_custom_units(self, fragment_tree, pricey):
        session = NavigationSession(
            fragment_tree, StaticNavigation(fragment_tree), params=pricey
        )
        outcome = session.expand(fragment_tree.root)
        revealed = len(outcome.revealed)
        assert session.navigation_cost == pytest.approx(5.0 + 2.0 * revealed)
        pmids = session.show_results(outcome.revealed[0])
        assert session.total_cost == pytest.approx(
            5.0 + 2.0 * revealed + 0.5 * len(pmids)
        )

    def test_simulator_propagates_params(self, fragment_tree, fragment_hierarchy, pricey):
        target = fragment_hierarchy.by_label("Apoptosis")
        cheap = navigate_to_target(
            fragment_tree, StaticNavigation(fragment_tree), target, show_results=False
        )
        expensive = navigate_to_target(
            fragment_tree,
            StaticNavigation(fragment_tree),
            target,
            params=pricey,
            show_results=False,
        )
        # Same actions, different unit prices.
        assert expensive.expand_actions == cheap.expand_actions
        assert expensive.concepts_revealed == cheap.concepts_revealed
        assert expensive.navigation_cost == pytest.approx(
            5.0 * cheap.expand_actions + 2.0 * cheap.concepts_revealed
        )

    def test_heuristic_strategy_and_session_share_params(
        self, fragment_tree, fragment_probs, pricey
    ):
        strategy = HeuristicReducedOpt(fragment_tree, fragment_probs, params=pricey)
        session = NavigationSession(fragment_tree, strategy, params=pricey)
        outcome = session.expand(fragment_tree.root)
        assert session.ledger.params is pricey
        assert outcome.decision.cut

    def test_free_citations_make_showresults_free(self, fragment_tree):
        free = CostParams(citation_cost=0.0)
        session = NavigationSession(
            fragment_tree, StaticNavigation(fragment_tree), params=free
        )
        session.show_results(fragment_tree.root)
        assert session.total_cost == session.navigation_cost
