"""Unit tests for the MES → TED reduction (Theorem 1)."""

from __future__ import annotations

import random

import pytest

from repro.complexity.mes import MESInstance, mes_optimum
from repro.complexity.reduction import (
    cut_to_subset,
    mes_to_ted,
    subset_to_cut,
    ted_subtree_count_for_k,
)
from repro.complexity.ted import duplicates_in_subtrees, ted_best_duplicates


@pytest.fixture()
def instance() -> MESInstance:
    return MESInstance.from_edges(
        vertices=[1, 2, 3, 4],
        edges=[(1, 2, 5), (2, 3, 3), (1, 3, 2), (1, 4, 10)],
    )


class TestMapping:
    def test_tree_shape_is_a_star(self, instance):
        tree, vertex_node = mes_to_ted(instance)
        assert len(tree) == 5
        assert tree.parents == [-1, 0, 0, 0, 0]
        assert tree.elements[0] == []
        assert set(vertex_node) == {1, 2, 3, 4}

    def test_edge_weight_becomes_shared_elements(self, instance):
        tree, vertex_node = mes_to_ted(instance)
        u, v = vertex_node[1], vertex_node[2]
        shared = set(tree.elements[u]) & set(tree.elements[v])
        assert len(shared) == 5  # w(1,2) = 5

    def test_subset_to_cut_and_back(self, instance):
        tree, vertex_node = mes_to_ted(instance)
        cut = subset_to_cut(instance, vertex_node, {1, 4})
        assert len(cut) == 2  # vertices 2 and 3 severed
        assert cut_to_subset(instance, vertex_node, cut) == {1, 4}

    def test_subset_to_cut_unknown_vertex(self, instance):
        tree, vertex_node = mes_to_ted(instance)
        with pytest.raises(ValueError):
            subset_to_cut(instance, vertex_node, {99})

    def test_subtree_count_formula(self, instance):
        assert ted_subtree_count_for_k(instance, 2) == 3
        assert ted_subtree_count_for_k(instance, 4) == 1
        with pytest.raises(ValueError):
            ted_subtree_count_for_k(instance, 9)


class TestCorrespondence:
    def test_duplicates_equal_internal_weight(self, instance):
        """Applying the mapped cut yields exactly the MES subset weight."""
        tree, vertex_node = mes_to_ted(instance)
        for subset in ({1, 2}, {1, 4}, {2, 3}, {1, 2, 3}, {1, 2, 4}):
            cut = subset_to_cut(instance, vertex_node, subset)
            duplicates = duplicates_in_subtrees(tree, tree.cut_subtrees(cut))
            assert duplicates == instance.subset_weight(subset)

    def test_optima_agree(self, instance):
        """max-duplicates TED solution == max-weight MES solution (Theorem 1)."""
        tree, vertex_node = mes_to_ted(instance)
        for k in (1, 2, 3, 4):
            mes_value = mes_optimum(instance, k)
            ted_value = ted_best_duplicates(tree, ted_subtree_count_for_k(instance, k))
            assert ted_value == mes_value

    def test_optima_agree_on_random_instances(self):
        rng = random.Random(42)
        for trial in range(10):
            n = rng.randrange(3, 7)
            vertices = list(range(n))
            edges = []
            for u in range(n):
                for v in range(u + 1, n):
                    if rng.random() < 0.6:
                        edges.append((u, v, rng.randrange(1, 8)))
            instance = MESInstance.from_edges(vertices, edges)
            tree, vertex_node = mes_to_ted(instance)
            for k in range(1, n + 1):
                expected = mes_optimum(instance, k)
                actual = ted_best_duplicates(
                    tree, ted_subtree_count_for_k(instance, k)
                )
                assert actual == expected, (trial, k)
