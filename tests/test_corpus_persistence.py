"""Unit tests for MEDLINE JSONL persistence."""

from __future__ import annotations

import io

import pytest

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.corpus.persistence import load_medline_jsonl, save_medline_jsonl


@pytest.fixture()
def medline() -> MedlineDatabase:
    db = MedlineDatabase(background_counts={3: 500, 7: 20})
    db.add(
        Citation(
            pmid=10,
            title="prothymosin in apoptosis",
            abstract="we report",
            authors=("Smith A", "Roe B"),
            year=2003,
            mesh_annotations=(3,),
            index_concepts=(3, 7),
        )
    )
    db.add(Citation(pmid=11, title="another", index_concepts=(7,)))
    return db


class TestRoundTrip:
    def test_full_round_trip(self, medline):
        buffer = io.StringIO()
        written = save_medline_jsonl(medline, buffer)
        assert written == 2
        restored = load_medline_jsonl(io.StringIO(buffer.getvalue()))
        assert restored.pmids() == medline.pmids()
        for pmid in medline.pmids():
            assert restored.get(pmid) == medline.get(pmid)

    def test_background_counts_preserved(self, medline):
        buffer = io.StringIO()
        save_medline_jsonl(medline, buffer)
        restored = load_medline_jsonl(io.StringIO(buffer.getvalue()))
        assert restored.medline_count(3) == medline.medline_count(3)
        assert restored.medline_count(7) == medline.medline_count(7)

    def test_empty_database_round_trips(self):
        buffer = io.StringIO()
        save_medline_jsonl(MedlineDatabase(), buffer)
        restored = load_medline_jsonl(io.StringIO(buffer.getvalue()))
        assert len(restored) == 0


class TestErrors:
    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            load_medline_jsonl(io.StringIO(""))

    def test_missing_header_rejected(self):
        body = '{"kind": "citation", "pmid": 1, "title": "x"}\n'
        with pytest.raises(ValueError):
            load_medline_jsonl(io.StringIO(body))

    def test_bad_version_rejected(self):
        body = '{"kind": "medline-header", "version": 99}\n'
        with pytest.raises(ValueError):
            load_medline_jsonl(io.StringIO(body))

    def test_unknown_record_kind_rejected(self):
        body = (
            '{"kind": "medline-header", "version": 1, "background_counts": {}}\n'
            '{"kind": "mystery"}\n'
        )
        with pytest.raises(ValueError):
            load_medline_jsonl(io.StringIO(body))
