"""Tests for ``repro.cluster``: shard map, L2 stage cache, fleet serving.

Covers the four layers of the scale-out subsystem bottom-up: shard
identity (:class:`ShardMap`), the cross-process content-addressed store
(:class:`ClusterStageCache`) and its L2 hook inside
:class:`~repro.pipeline.cache.StageCache`, the worker fleet
(supervised spawn / crash / respawn), and the
:class:`~repro.cluster.router.BioNavCluster` facade end to end —
including the WSGI app mounted over a cluster and the 410-after-respawn
session contract.
"""

from __future__ import annotations

import json
import pickle
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlencode

import pytest

from repro.bionav import BioNav
from repro.cluster import (
    BioNavCluster,
    ClusterConfig,
    ClusterStageCache,
    ShardMap,
)
from repro.cluster.stagecache import MISS
from repro.pipeline.cache import StageCache
from repro.serving.sessions import SessionExpired
from repro.web.app import BioNavWebApp

KEY_A = "a" * 40
KEY_B = "b" * 40
KEY_C = "c" * 40


def request_page(
    app: BioNavWebApp, path: str, query: Optional[Dict[str, str]] = None
) -> Tuple[str, Dict[str, str], str]:
    """Drive the WSGI callable; returns (status, headers, body)."""
    environ = {
        "REQUEST_METHOD": "GET",
        "PATH_INFO": path,
        "QUERY_STRING": urlencode(query or {}),
    }
    captured: Dict[str, object] = {}

    def start_response(status: str, headers: List[Tuple[str, str]]) -> None:
        captured["status"] = status
        captured["headers"] = dict(headers)

    body = b"".join(app(environ, start_response))
    return captured["status"], captured["headers"], body.decode("utf-8")


# ----------------------------------------------------------------------
# Shard identity
# ----------------------------------------------------------------------
class TestShardMap:
    def test_every_top_level_concept_is_a_branch_shard(self, fragment_hierarchy):
        shardmap = ShardMap(fragment_hierarchy)
        top = fragment_hierarchy.children(fragment_hierarchy.root)
        assert len(shardmap.branches) == len(top)
        assert all(key.startswith("branch:") for key in shardmap.branches)
        assert shardmap.snapshot() == {"branch_shards": len(top)}

    def test_single_branch_node_set_classifies_to_that_branch(
        self, fragment_hierarchy
    ):
        shardmap = ShardMap(fragment_hierarchy)
        branch = fragment_hierarchy.children(fragment_hierarchy.root)[0]
        subtree = [branch] + list(fragment_hierarchy.children(branch))
        key = shardmap.classify(subtree)
        assert key == "branch:%s" % fragment_hierarchy.uid(branch)
        # The root rides along in every navigation tree; it is ignored.
        assert shardmap.classify([fragment_hierarchy.root] + subtree) == key

    def test_spanning_node_set_classifies_to_none(self, fragment_hierarchy):
        shardmap = ShardMap(fragment_hierarchy)
        top = fragment_hierarchy.children(fragment_hierarchy.root)
        assert len(top) >= 2, "fragment must have multiple top-level branches"
        assert shardmap.classify([top[0], top[1]]) is None
        assert shardmap.classify([fragment_hierarchy.root]) is None

    def test_shard_key_falls_back_to_query_hash(self, fragment_hierarchy):
        shardmap = ShardMap(fragment_hierarchy)
        top = fragment_hierarchy.children(fragment_hierarchy.root)
        fallback = shardmap.shard_key("prothymosin", [top[0], top[1]])
        assert fallback == ShardMap.query_fallback("prothymosin")
        assert fallback.startswith("query:")
        # Deterministic, and distinct queries get distinct keys.
        assert fallback == ShardMap.query_fallback("prothymosin")
        assert fallback != ShardMap.query_fallback("varenicline")

    def test_branch_of_walks_and_caches_the_parent_chain(self, fragment_hierarchy):
        shardmap = ShardMap(fragment_hierarchy)
        branch = fragment_hierarchy.children(fragment_hierarchy.root)[0]
        deep = branch
        children = fragment_hierarchy.children(deep)
        while children:
            deep = children[0]
            children = fragment_hierarchy.children(deep)
        assert shardmap.branch_of(deep) == branch
        assert shardmap.branch_of(deep) == branch  # cached path
        assert shardmap.branch_of(fragment_hierarchy.root) is None


# ----------------------------------------------------------------------
# The file-backed L2 store
# ----------------------------------------------------------------------
class TestClusterStageCache:
    def test_roundtrip_and_miss(self, tmp_path):
        store = ClusterStageCache(tmp_path)
        assert store.get("nav_tree", KEY_A) is MISS
        assert store.put("nav_tree", KEY_A, {"value": 1})
        assert store.get("nav_tree", KEY_A) == {"value": 1}
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["publishes"] == 1 and stats["entries"] == 1

    def test_uncovered_stage_is_a_noop(self, tmp_path):
        store = ClusterStageCache(tmp_path)
        assert not store.put("hierarchy", KEY_A, object())
        assert store.get("hierarchy", KEY_A) is MISS
        assert store.stats()["entries"] == 0

    def test_unpicklable_value_is_skipped_not_raised(self, tmp_path):
        store = ClusterStageCache(tmp_path)
        assert not store.put("nav_tree", KEY_A, lambda: None)
        assert store.stats()["errors"] == 1

    def test_corrupt_entry_is_deleted_and_reported_as_miss(self, tmp_path):
        store = ClusterStageCache(tmp_path)
        store.put("nav_tree", KEY_A, [1, 2, 3])
        path = store._entry_path("nav_tree", KEY_A)
        path.write_bytes(b"not a pickle")
        assert store.get("nav_tree", KEY_A) is MISS
        assert not path.exists()
        assert store.stats()["errors"] == 1

    def test_lru_eviction_by_entry_count(self, tmp_path):
        store = ClusterStageCache(tmp_path, max_entries=2)
        store.put("nav_tree", KEY_A, "a")
        time.sleep(0.02)
        store.put("nav_tree", KEY_B, "b")
        time.sleep(0.02)
        store.get("nav_tree", KEY_A)  # touch: A becomes newest
        time.sleep(0.02)
        store.put("nav_tree", KEY_C, "c")
        assert store.get("nav_tree", KEY_B) is MISS  # oldest went
        assert store.get("nav_tree", KEY_A) == "a"
        assert store.stats()["evictions"] >= 1

    def test_lru_eviction_by_bytes(self, tmp_path):
        store = ClusterStageCache(tmp_path, max_bytes=4096)
        store.put("nav_tree", KEY_A, b"x" * 3000)
        time.sleep(0.02)
        store.put("nav_tree", KEY_B, b"y" * 3000)
        assert store.get("nav_tree", KEY_A) is MISS
        assert store.get("nav_tree", KEY_B) is not MISS
        assert store.stats()["bytes"] <= 4096

    def test_build_lock_is_single_flight_with_stale_break(self, tmp_path):
        store = ClusterStageCache(tmp_path, stale_after=0.2)
        with store.build_lock("cut", KEY_A) as lock:
            assert lock.acquired
            with store.build_lock("cut", KEY_A) as second:
                assert not second.acquired  # held by the first
        # A crashed builder's lock (simulated: left on disk, then aged
        # past stale_after) is broken by the next builder.
        lock = store.build_lock("cut", KEY_A)
        lock.__enter__()
        assert lock.acquired
        time.sleep(0.25)
        with store.build_lock("cut", KEY_A) as taker:
            assert taker.acquired  # stale lock broken

    def test_wait_for_returns_published_value_or_times_out(self, tmp_path):
        store = ClusterStageCache(tmp_path)
        assert store.wait_for("nav_tree", KEY_A, timeout=0.05) is MISS
        store.put("nav_tree", KEY_A, "published")
        assert store.wait_for("nav_tree", KEY_A, timeout=0.05) == "published"

    def test_clear_removes_entries(self, tmp_path):
        store = ClusterStageCache(tmp_path)
        store.put("nav_tree", KEY_A, "a")
        store.put("results", KEY_B, "b")
        store.clear()
        assert store.stats()["entries"] == 0

    def test_bounds_are_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ClusterStageCache(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ClusterStageCache(tmp_path, max_bytes=0)


class TestStageCacheL2Hook:
    def test_artifact_published_by_one_cache_is_not_rebuilt_by_another(
        self, tmp_path
    ):
        """Two StageCaches (two 'processes') share one store: the second
        build of a key unpickles the first's publish — the ISSUE's
        never-rebuilt guarantee, here without forking for precision."""
        store_a = ClusterStageCache(tmp_path)
        store_b = ClusterStageCache(tmp_path)
        cache_a = StageCache(l2=store_a)
        cache_b = StageCache(l2=store_b)
        built: List[str] = []

        def builder() -> str:
            built.append("x")
            return "artifact"

        assert cache_a.get_or_build("nav_tree", KEY_A, builder) == "artifact"
        assert cache_b.get_or_build("nav_tree", KEY_A, builder) == "artifact"
        assert built == ["x"], "second cache must fetch, not rebuild"
        a_row = cache_a.snapshot()["nav_tree"]
        b_row = cache_b.snapshot()["nav_tree"]
        assert a_row["l2_misses"] == 1 and a_row["l2_publishes"] == 1
        assert b_row["l2_hits"] == 1 and b_row["builds"] == 0

    def test_uncovered_stage_bypasses_the_l2(self, tmp_path):
        store = ClusterStageCache(tmp_path)
        cache = StageCache(l2=store)
        cache.get_or_build("hierarchy", KEY_A, lambda: "snapshot")
        row = cache.snapshot()["hierarchy"]
        assert row["l2_hits"] == 0 and row["l2_misses"] == 0
        assert store.stats()["entries"] == 0

    def test_lock_loser_waits_for_the_winners_publish(self, tmp_path):
        """When another process holds the build lock, the loser polls
        and picks up the publish instead of building a duplicate."""
        store = ClusterStageCache(tmp_path, stale_after=5.0)
        cache = StageCache(l2=store)
        winner = store.build_lock("nav_tree", KEY_A)
        winner.__enter__()
        try:
            store.put("nav_tree", KEY_A, "from-winner")
            value = cache.get_or_build(
                "nav_tree", KEY_A, lambda: pytest.fail("must not build")
            )
        finally:
            winner.__exit__(None, None, None)
        assert value == "from-winner"
        assert cache.snapshot()["nav_tree"]["l2_hits"] == 1


# ----------------------------------------------------------------------
# The fleet, end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster_bionav(small_workload) -> BioNav:
    return BioNav(small_workload.database, small_workload.entrez)


@pytest.fixture(scope="module")
def keywords(small_workload) -> List[str]:
    return [q.spec.keyword for q in small_workload.queries]


@pytest.fixture(scope="module")
def cluster(cluster_bionav, tmp_path_factory):
    """A 2-worker fleet with a shared L2, reused across the module."""
    config = ClusterConfig(
        workers=2,
        cache_dir=str(tmp_path_factory.mktemp("l2")),
        heartbeat_interval=0.05,
        poll_interval=0.02,
        request_timeout=30.0,
    )
    with BioNavCluster(cluster_bionav, config) as fleet:
        yield fleet


class TestClusterServing:
    def test_full_session_roundtrip_through_the_fleet(self, cluster, keywords):
        result = cluster.search(keywords[0])
        assert result.session.startswith("w")
        assert "g" in result.session and "-s" in result.session
        assert result.count > 0
        view = cluster.view(result.session)
        assert view.session == result.session
        assert view.rows
        node = next(row.node for row in view.rows if row.expandable)
        expanded = cluster.expand(result.session, node)
        assert len(expanded.rows) > len(view.rows)
        listed = cluster.results(result.session, expanded.rows[0].node)
        assert listed.pmids and listed.session == result.session
        back = cluster.backtrack(result.session)
        assert len(back.rows) == len(view.rows)

    def test_unknown_and_malformed_sids_answer_not_found(self, cluster):
        with pytest.raises(KeyError):
            cluster.view("not-a-cluster-sid")
        with pytest.raises(KeyError):
            cluster.view("w9g0-s000001")  # no such worker slot
        with pytest.raises(KeyError):
            cluster.view("w0g0-s999999")  # never-issued local sid

    def test_router_learns_the_shard_hint(self, cluster, keywords):
        cluster.search(keywords[1])
        assert cluster.stats()["cluster"]["hints_learned"] >= 1
        learned = cluster.shard_key(keywords[1])
        assert learned.startswith(("branch:", "query:"))

    def test_cross_worker_l2_hit(self, cluster, keywords):
        """Worker B never rebuilds a navigation tree worker A built:
        drive the same query through both workers directly and read the
        second worker's pipeline ledger."""
        query = keywords[3]  # untouched by the other module-scoped tests
        before = cluster._supervisor.call(1, "stats")["pipeline"]["nav_tree"]
        cluster._supervisor.call(0, "search", {"query": query})
        cluster._supervisor.call(1, "search", {"query": query})
        row = cluster._supervisor.call(1, "stats")["pipeline"]["nav_tree"]
        assert row["l2_hits"] >= before["l2_hits"] + 1, (
            "worker 1 must fetch, not rebuild"
        )
        assert row["builds"] == before["builds"]
        merged = cluster.stats()
        assert merged["l2"]["hits"] >= 1
        assert merged["l2"]["entries"] >= 1

    def test_merged_health_and_stats_cover_the_fleet(self, cluster):
        health = cluster.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert len(health["shards"]) == 2
        for shard in health["shards"]:
            assert shard["alive"]
            assert "queue_depth" in shard and "respawns" in shard
        stats = cluster.stats()
        assert stats["cluster"]["size"] == 2
        assert stats["cluster"]["branch_shards"] >= 1
        assert len(stats["cluster"]["ring"]["members"]) == 2
        assert len(stats["workers"]) == 2
        assert "hit_ratio" in stats["l2"]

    def test_wsgi_app_mounts_the_cluster(self, cluster, keywords):
        app = BioNavWebApp(runtime=cluster)
        status, _, body = request_page(app, "/api/search", {"q": keywords[0]})
        assert status == "200 OK"
        sid = json.loads(body)["session"]
        status, _, body = request_page(app, "/api/nav/%s" % sid)
        assert status == "200 OK"
        assert json.loads(body)["rows"]
        status, _, body = request_page(app, "/api/health")
        assert json.loads(body)["workers"] == 2
        status, _, body = request_page(app, "/nav/%s" % sid)
        assert status == "200 OK" and "<ul" in body


class TestWorkerCrashRecovery:
    @pytest.fixture()
    def crash_cluster(self, cluster_bionav, tmp_path):
        config = ClusterConfig(
            workers=2,
            cache_dir=str(tmp_path / "l2"),
            heartbeat_interval=0.05,
            poll_interval=0.02,
            request_timeout=30.0,
        )
        with BioNavCluster(cluster_bionav, config) as fleet:
            yield fleet

    @staticmethod
    def _sessions_on_both_workers(fleet, keywords) -> Dict[int, str]:
        """Search until both workers own a session (spread placement)."""
        owned: Dict[int, str] = {}
        for attempt in range(50):
            sid = fleet.search(keywords[attempt % len(keywords)]).session
            owned.setdefault(int(sid[1 : sid.index("g")]), sid)
            if len(owned) == 2:
                return owned
        raise AssertionError("spread placement never used both workers")

    def test_crash_respawn_410_and_other_shard_survives(
        self, crash_cluster, keywords
    ):
        """The ISSUE's crash contract: killing one worker mid-session
        loses no other shard's sessions, and the dead worker's sessions
        answer 410 Gone (re-run the search) after automatic respawn."""
        owned = self._sessions_on_both_workers(crash_cluster, keywords)
        victim, survivor = sorted(owned)[0], sorted(owned)[1]
        crash_cluster.kill_worker(victim)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            health = crash_cluster.health()
            if health["cluster"]["crashes"] >= 1 and all(
                s["alive"] for s in health["shards"]
            ):
                break
            time.sleep(0.05)
        else:
            raise AssertionError("worker was not respawned in time")
        # The dead worker's session: gone, honestly.
        with pytest.raises(SessionExpired):
            crash_cluster.view(owned[victim])
        # The other shard's session: untouched.
        assert crash_cluster.view(owned[survivor]).rows
        # The respawned slot serves fresh sessions again.
        fresh = crash_cluster.search(keywords[0])
        assert crash_cluster.view(fresh.session).rows
        assert crash_cluster.health()["cluster"]["crashes"] == 1

    def test_stale_sid_maps_to_410_with_research_hint_over_http(
        self, crash_cluster, keywords
    ):
        app = BioNavWebApp(runtime=crash_cluster)
        sid = crash_cluster.search(keywords[0]).session
        victim = int(sid[1 : sid.index("g")])
        crash_cluster.kill_worker(victim)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            health = crash_cluster.health()
            if all(s["alive"] for s in health["shards"]) and health["cluster"][
                "crashes"
            ]:
                break
            time.sleep(0.05)
        status, _, body = request_page(app, "/api/nav/%s" % sid)
        assert status == "410 Gone"
        payload = json.loads(body)
        assert payload["error_code"] == "session_expired"
        assert "re-run the search" in payload["error"]


class TestSessionPayloadsArePicklable:
    def test_view_objects_cross_the_process_boundary(self, cluster, keywords):
        """The wire format is pickle: every view object a worker returns
        must survive a round-trip (guards against artifacts growing a
        reference to the unpicklable runtime)."""
        result = cluster.search(keywords[0])
        view = cluster.view(result.session)
        for payload in (result, view):
            clone = pickle.loads(pickle.dumps(payload))
            assert clone.session == payload.session
