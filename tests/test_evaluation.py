"""Unit tests for the model-expected strategy cost evaluator."""

from __future__ import annotations

import pytest

from repro.core.evaluation import expected_strategy_cost
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import CutTree, OptEdgeCut
from repro.core.paged_static import PagedStaticNavigation
from repro.core.probabilities import ProbabilityModel
from repro.core.static_nav import StaticNavigation
from repro.hierarchy.concept import ConceptHierarchy


def flat_counts(node: int) -> int:
    return 500


@pytest.fixture()
def small_tree():
    h = ConceptHierarchy(root_label="root")
    a = h.add_child(0, "a")
    h.add_child(a, "b")
    h.add_child(a, "c")
    h.add_child(0, "d")
    return NavigationTree.build(
        h,
        {
            1: set(range(0, 20)),
            2: set(range(0, 10)),
            3: set(range(10, 20)),
            4: set(range(20, 45)),
        },
    )


class TestExpectedStrategyCost:
    def test_positive_and_finite(self, small_tree):
        probs = ProbabilityModel(small_tree, flat_counts, upper_threshold=15, lower_threshold=3)
        cost = expected_strategy_cost(small_tree, probs, StaticNavigation(small_tree))
        assert 0 < cost < 10_000

    def test_single_node_tree_costs_its_results(self):
        h = ConceptHierarchy()
        tree = NavigationTree.build(h, {})
        probs = ProbabilityModel(tree, flat_counts)
        cost = expected_strategy_cost(tree, probs, StaticNavigation(tree))
        assert cost == 0.0  # empty root, pE mass 0

    def test_heuristic_never_worse_than_static_under_model(self, small_tree):
        """The heuristic optimizes exactly this objective, so it must be at
        least as good as any fixed policy on trees it solves exactly."""
        probs = ProbabilityModel(small_tree, flat_counts, upper_threshold=15, lower_threshold=3)
        heuristic_cost = expected_strategy_cost(
            small_tree, probs, HeuristicReducedOpt(small_tree, probs)
        )
        static_cost = expected_strategy_cost(
            small_tree, probs, StaticNavigation(small_tree)
        )
        assert heuristic_cost <= static_cost + 1e-9

    def test_heuristic_matches_opt_on_exactly_solved_trees(self, small_tree):
        """On a ≤N-node tree the heuristic *is* Opt-EdgeCut; the evaluator
        must agree with the optimizer's own expected cost."""
        probs = ProbabilityModel(small_tree, flat_counts, upper_threshold=15, lower_threshold=3)
        component = frozenset(small_tree.iter_dfs())
        cut_tree = CutTree.from_component(small_tree, probs, component, small_tree.root)
        optimal = OptEdgeCut(cut_tree, probs).solve()
        evaluated = expected_strategy_cost(
            small_tree, probs, HeuristicReducedOpt(small_tree, probs)
        )
        assert evaluated == pytest.approx(optimal.expected_cost)

    def test_paged_static_costs_evaluated(self, small_tree):
        probs = ProbabilityModel(small_tree, flat_counts, upper_threshold=15, lower_threshold=3)
        cost = expected_strategy_cost(
            small_tree, probs, PagedStaticNavigation(small_tree, page_size=1)
        )
        assert cost > 0

    def test_component_budget_enforced(self, small_tree):
        probs = ProbabilityModel(small_tree, flat_counts, upper_threshold=15, lower_threshold=3)
        with pytest.raises(RuntimeError):
            expected_strategy_cost(
                small_tree, probs, StaticNavigation(small_tree), max_components=1
            )

    def test_works_on_workload_scale_tree(self, small_workload):
        prepared = small_workload.prepare("LbetaT2")
        cost = expected_strategy_cost(
            prepared.tree,
            prepared.probs,
            HeuristicReducedOpt(prepared.tree, prepared.probs),
        )
        assert cost > 0
