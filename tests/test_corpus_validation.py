"""Unit tests for corpus realism statistics."""

from __future__ import annotations

import pytest

from repro.corpus.citation import Citation
from repro.corpus.validation import CorpusStats, concept_frequency_gini, corpus_stats
from repro.hierarchy.concept import ConceptHierarchy


@pytest.fixture()
def chain() -> ConceptHierarchy:
    h = ConceptHierarchy()
    a = h.add_child(0, "a")      # 1
    h.add_child(a, "b")          # 2
    h.add_child(0, "c")          # 3
    return h


class TestGini:
    def test_uniform_distribution_near_zero(self):
        assert concept_frequency_gini([5] * 100) == pytest.approx(0.0, abs=0.02)

    def test_concentrated_distribution_near_one(self):
        assert concept_frequency_gini([1000] + [1] * 99) > 0.85

    def test_empty_and_zero(self):
        assert concept_frequency_gini([]) == 0.0
        assert concept_frequency_gini([0, 0]) == 0.0

    def test_monotone_in_skew(self):
        mild = concept_frequency_gini([4, 3, 3, 2])
        harsh = concept_frequency_gini([10, 1, 1, 1])
        assert harsh > mild


class TestCorpusStats:
    def test_empty_corpus(self, chain):
        stats = corpus_stats([], chain)
        assert stats == CorpusStats(0, 0.0, 0.0, 0, 0.0, 0.0)

    def test_basic_counts(self, chain):
        citations = [
            Citation(pmid=1, title="x", mesh_annotations=(1,), index_concepts=(1, 2)),
            Citation(pmid=2, title="y", mesh_annotations=(3,), index_concepts=(3,)),
        ]
        stats = corpus_stats(citations, chain)
        assert stats.n_citations == 2
        assert stats.mean_concepts == pytest.approx(1.5)
        assert stats.mean_annotations == pytest.approx(1.0)
        assert stats.distinct_concepts == 3

    def test_locality_detects_related_pairs(self, chain):
        related = Citation(pmid=1, title="x", index_concepts=(1, 2))   # a, b: related
        unrelated = Citation(pmid=2, title="y", index_concepts=(1, 3))  # a, c: siblings
        assert corpus_stats([related], chain).locality == 1.0
        assert corpus_stats([unrelated], chain).locality == 0.0

    def test_workload_corpus_is_realistic(self, small_workload):
        """DESIGN.md §4 substitution claims, measured."""
        citations = list(small_workload.medline.iter_citations())
        stats = corpus_stats(citations, small_workload.hierarchy)
        # Many concepts per citation, annotations a subset.
        assert stats.mean_concepts >= 10
        assert 0 < stats.mean_annotations <= stats.mean_concepts
        # Heavy skew in concept usage.
        assert stats.frequency_gini > 0.4
        # Local clustering well above independent sampling (<1% for
        # uniform pairs on a 1,200-node hierarchy).
        assert stats.locality > 0.03
