"""Unit tests for the Table I workload (specs + materialization)."""

from __future__ import annotations

import pytest

from repro.workload.queries import TABLE_I_QUERIES, WorkloadQuery, query_by_keyword


class TestSpecs:
    def test_ten_queries(self):
        assert len(TABLE_I_QUERIES) == 10

    def test_paper_prose_counts_honored(self):
        assert query_by_keyword("prothymosin").n_citations == 313
        assert query_by_keyword("vardenafil").n_citations == 486

    def test_paper_target_labels(self):
        assert query_by_keyword("LbetaT2").target_label == "Mice, Transgenic"
        assert (
            query_by_keyword("ice nucleation").target_label
            == "Plants, Genetically Modified"
        )
        assert query_by_keyword("follistatin").target_label == "Follicle Stimulating Hormone"

    def test_ice_nucleation_has_low_selectivity(self):
        # The paper's hardest case: extremely low L(n) for the target.
        assert query_by_keyword("ice nucleation").target_share < 0.1

    def test_unique_keywords_and_seeds(self):
        keywords = [q.keyword for q in TABLE_I_QUERIES]
        seeds = [q.seed for q in TABLE_I_QUERIES]
        assert len(set(keywords)) == 10
        assert len(set(seeds)) == 10

    def test_unknown_keyword_raises(self):
        with pytest.raises(KeyError):
            query_by_keyword("nonexistent")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadQuery("x", 0, "T", 3, 1, 0.5, 1)
        with pytest.raises(ValueError):
            WorkloadQuery("x", 10, "T", 1, 1, 0.5, 1)
        with pytest.raises(ValueError):
            WorkloadQuery("x", 10, "T", 3, 0, 0.5, 1)
        with pytest.raises(ValueError):
            WorkloadQuery("x", 10, "T", 3, 1, 0.0, 1)


class TestMaterialization:
    def test_every_query_is_built(self, small_workload):
        assert len(small_workload.queries) == 10

    def test_target_labels_grafted_into_hierarchy(self, small_workload):
        for built in small_workload.queries:
            node = small_workload.hierarchy.by_label(built.spec.target_label)
            assert node == built.target_node

    def test_esearch_returns_exact_result_counts(self, small_workload):
        for built in small_workload.queries:
            result = small_workload.entrez.esearch(built.spec.keyword, retmax=0)
            assert result.count == built.spec.n_citations

    def test_queries_do_not_leak_into_each_other(self, small_workload):
        prothymosin = set(small_workload.entrez.esearch_all("prothymosin"))
        vardenafil = set(small_workload.entrez.esearch_all("vardenafil"))
        assert not prothymosin & vardenafil

    def test_prepare_builds_navigation_tree(self, small_workload):
        prepared = small_workload.prepare("prothymosin")
        assert prepared.tree.size() > 50
        assert len(prepared.pmids) == 313
        assert prepared.target_node in prepared.tree

    def test_target_always_has_citations(self, small_workload):
        for built in small_workload.queries:
            prepared = small_workload.prepare(built.spec.keyword)
            assert len(prepared.tree.results(prepared.target_node)) >= 2

    def test_built_query_lookup(self, small_workload):
        built = small_workload.built_query("follistatin")
        assert built.spec.keyword == "follistatin"
        with pytest.raises(KeyError):
            small_workload.built_query("nope")

    def test_target_share_orders_selectivity(self, small_workload):
        """Higher target_share specs yield relatively bigger L(target)."""
        ice = small_workload.prepare("ice nucleation")
        vard = small_workload.prepare("vardenafil")
        ice_share = len(ice.tree.results(ice.target_node)) / len(ice.pmids)
        vard_share = len(vard.tree.results(vard.target_node)) / len(vard.pmids)
        assert ice_share < vard_share

    def test_medline_counts_available_for_probabilities(self, small_workload):
        prepared = small_workload.prepare("LbetaT2")
        count = small_workload.database.medline_count(prepared.target_node)
        assert count > 0
