"""Shared fixtures: a hand-crafted paper-fragment scenario and a small workload.

The *fragment* fixtures build a navigation scenario on the embedded MeSH
fragment with known, hand-assigned citations, so tests can assert exact
counts (the numbers loosely follow the paper's prothymosin walkthrough).
The *workload* fixture materializes a scaled-down Table I deployment once
per session for integration-level tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

import pytest

from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.concept import ConceptHierarchy
from repro.hierarchy.mesh import paper_fragment
from repro.workload.builder import Workload, build_workload

# Citations (small integers) hand-attached to fragment concepts.  Several
# citations appear under multiple concepts on purpose — duplicates are what
# make EdgeCut selection interesting.
FRAGMENT_ANNOTATIONS: Dict[str, FrozenSet[int]] = {
    "Apoptosis": frozenset(range(1, 36)),          # 35 citations
    "Autophagy": frozenset({36, 37, 38}),
    "Necrosis": frozenset({39, 40}),
    "Cell Death": frozenset({1, 2, 41, 42}),       # overlaps Apoptosis
    "Cell Proliferation": frozenset(range(20, 50)),  # overlaps Apoptosis/others
    "Cell Division": frozenset(range(30, 45)),
    "Cell Differentiation": frozenset({50, 51, 52}),
    "Chromatin": frozenset(range(60, 80)),
    "Nucleosomes": frozenset({60, 61, 62, 63}),
    "Heterochromatin": frozenset({64, 65}),
    "Euchromatin": frozenset({66, 67}),
    "Histones": frozenset(range(70, 90)),          # overlaps Chromatin
    "Transcription, Genetic": frozenset(range(85, 100)),
    "Reverse Transcription": frozenset({85, 86, 87, 88}),
    "Gene Expression": frozenset(range(90, 110)),
    "Immunity, Innate": frozenset({110, 111, 112}),
    "Mice, Transgenic": frozenset(range(1, 15)),   # overlaps Apoptosis
}

# Simulated MEDLINE-wide counts per label (LT): broad concepts common,
# specific ones rare.
FRAGMENT_MEDLINE_COUNTS: Dict[str, int] = {
    "Apoptosis": 90_000,
    "Autophagy": 8_000,
    "Necrosis": 30_000,
    "Cell Death": 120_000,
    "Cell Proliferation": 150_000,
    "Cell Division": 110_000,
    "Cell Differentiation": 140_000,
    "Chromatin": 45_000,
    "Nucleosomes": 9_000,
    "Heterochromatin": 4_000,
    "Euchromatin": 1_500,
    "Histones": 40_000,
    "Transcription, Genetic": 160_000,
    "Reverse Transcription": 12_000,
    "Gene Expression": 300_000,
    "Immunity, Innate": 60_000,
    "Mice, Transgenic": 200_000,
}


@pytest.fixture(scope="session")
def fragment_hierarchy() -> ConceptHierarchy:
    return paper_fragment()


@pytest.fixture(scope="session")
def fragment_annotations(fragment_hierarchy) -> Dict[int, FrozenSet[int]]:
    return {
        fragment_hierarchy.by_label(label): citations
        for label, citations in FRAGMENT_ANNOTATIONS.items()
    }


@pytest.fixture()
def fragment_tree(fragment_hierarchy, fragment_annotations) -> NavigationTree:
    return NavigationTree.build(fragment_hierarchy, fragment_annotations)


@pytest.fixture()
def fragment_medline_count(fragment_hierarchy):
    counts = {
        fragment_hierarchy.by_label(label): count
        for label, count in FRAGMENT_MEDLINE_COUNTS.items()
    }

    def lookup(node: int) -> int:
        return counts.get(node, 1000)

    return lookup


@pytest.fixture()
def fragment_probs(fragment_tree, fragment_medline_count) -> ProbabilityModel:
    return ProbabilityModel(fragment_tree, fragment_medline_count)


@pytest.fixture(scope="session")
def small_workload() -> Workload:
    """A scaled-down Table I deployment, built once per test session."""
    return build_workload(hierarchy_size=1200, background_citations=60)
