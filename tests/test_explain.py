"""Unit tests for EXPAND decision explanations."""

from __future__ import annotations

import pytest

from repro.core.explain import explain_expansion
from repro.core.heuristic import HeuristicReducedOpt


@pytest.fixture()
def full_component(fragment_tree):
    return frozenset(fragment_tree.iter_dfs())


class TestExplainExpansion:
    def test_chosen_matches_the_heuristic(self, fragment_tree, fragment_probs, full_component):
        explanation = explain_expansion(
            fragment_tree, fragment_probs, full_component, fragment_tree.root
        )
        strategy = HeuristicReducedOpt(fragment_tree, fragment_probs)
        decision = strategy.best_cut(full_component, fragment_tree.root)
        assert set(explanation.chosen.cut) == set(decision.cut)
        assert explanation.chosen.margin == 0.0

    def test_alternatives_sorted_by_margin(self, fragment_tree, fragment_probs, full_component):
        explanation = explain_expansion(
            fragment_tree, fragment_probs, full_component, fragment_tree.root, top_k=4
        )
        margins = [alt.margin for alt in explanation.alternatives]
        assert margins == sorted(margins)
        assert all(m >= 0 for m in margins)
        assert len(explanation.alternatives) <= 4

    def test_labels_match_cut_children(self, fragment_tree, fragment_probs, full_component):
        explanation = explain_expansion(
            fragment_tree, fragment_probs, full_component, fragment_tree.root
        )
        for alternative in (explanation.chosen,) + explanation.alternatives:
            expected = tuple(
                fragment_tree.label(child) for _, child in alternative.cut
            )
            assert alternative.revealed_labels == expected

    def test_probabilities_reported(self, fragment_tree, fragment_probs, full_component):
        explanation = explain_expansion(
            fragment_tree, fragment_probs, full_component, fragment_tree.root
        )
        assert explanation.explore_probability == pytest.approx(1.0)
        assert 0.0 <= explanation.expand_probability <= 1.0
        assert explanation.reduced_size <= 10

    def test_small_component_explained_exactly(self, fragment_tree, fragment_probs, fragment_hierarchy):
        cell_death = fragment_hierarchy.by_label("Cell Death")
        component = fragment_tree.subtree_nodes(cell_death)
        explanation = explain_expansion(
            fragment_tree, fragment_probs, component, cell_death
        )
        assert explanation.reduced_size == len(component)
        assert explanation.chosen.cut

    def test_singleton_rejected(self, fragment_tree, fragment_probs, fragment_hierarchy):
        leaf = fragment_hierarchy.by_label("Euchromatin")
        with pytest.raises(ValueError):
            explain_expansion(
                fragment_tree, fragment_probs, frozenset({leaf}), leaf
            )

    def test_works_on_workload_scale(self, small_workload):
        prepared = small_workload.prepare("LbetaT2")
        component = frozenset(prepared.tree.iter_dfs())
        explanation = explain_expansion(
            prepared.tree, prepared.probs, component, prepared.tree.root
        )
        assert explanation.chosen.cut
        assert explanation.reduced_size <= 10
