"""Unit tests for repro.core.partition (k-partition algorithm)."""

from __future__ import annotations

import pytest

from repro.core.partition import k_partition, partition_with_limit


@pytest.fixture()
def adjacency():
    # 0 -> 1 -> {3, 4}
    #   -> 2 -> {5, 6, 7}
    return {0: [1, 2], 1: [3, 4], 2: [5, 6, 7], 3: [], 4: [], 5: [], 6: [], 7: []}


@pytest.fixture()
def unit_weights(adjacency):
    return {n: 1.0 for n in adjacency}


class TestKPartition:
    def test_huge_delta_single_partition(self, adjacency, unit_weights):
        parts = k_partition(adjacency, 0, unit_weights, delta=100)
        assert len(parts) == 1
        assert sorted(parts[0]) == list(range(8))

    def test_partitions_cover_all_nodes_exactly_once(self, adjacency, unit_weights):
        parts = k_partition(adjacency, 0, unit_weights, delta=3)
        seen = [n for part in parts for n in part]
        assert sorted(seen) == list(range(8))

    def test_partitions_are_contiguous_subtrees(self, adjacency, unit_weights):
        parts = k_partition(adjacency, 0, unit_weights, delta=3)
        for part in parts:
            root = part[0]
            members = set(part)
            # Every member other than the root has its parent in the part.
            parents = {c: p for p, cs in adjacency.items() for c in cs}
            for member in part:
                if member != root:
                    assert parents[member] in members

    def test_weight_threshold_respected(self, adjacency, unit_weights):
        parts = k_partition(adjacency, 0, unit_weights, delta=3)
        for part in parts:
            assert sum(unit_weights[n] for n in part) <= 3

    def test_heaviest_child_split_first(self, adjacency):
        weights = {n: 1.0 for n in adjacency}
        weights[2] = 10.0  # subtree of 2 is by far the heaviest
        parts = k_partition(adjacency, 0, weights, delta=12)
        # Node 2's subtree must have been split off on its own.
        split_roots = [part[0] for part in parts]
        assert 2 in split_roots

    def test_single_overweight_node_allowed(self):
        adjacency = {0: [1], 1: []}
        weights = {0: 100.0, 1: 1.0}
        parts = k_partition(adjacency, 0, weights, delta=5)
        # Node 0 alone is heavier than delta; it still forms a partition.
        assert [0] in parts

    def test_zero_delta_splits_every_positive_subtree(self, adjacency):
        weights = {n: 1.0 for n in adjacency}
        parts = k_partition(adjacency, 0, weights, delta=0)
        assert len(parts) == 8  # every node its own partition

    def test_negative_delta_rejected(self, adjacency, unit_weights):
        with pytest.raises(ValueError):
            k_partition(adjacency, 0, unit_weights, delta=-1)

    def test_negative_weight_rejected(self, adjacency):
        weights = {n: 1.0 for n in adjacency}
        weights[3] = -2.0
        with pytest.raises(ValueError):
            k_partition(adjacency, 0, weights, delta=3)

    def test_partition_root_is_first_element(self, adjacency, unit_weights):
        parts = k_partition(adjacency, 0, unit_weights, delta=3)
        parents = {c: p for p, cs in adjacency.items() for c in cs}
        for part in parts:
            root = part[0]
            assert root == 0 or parents[root] not in part


class TestPartitionWithLimit:
    def test_respects_max_partitions(self, adjacency, unit_weights):
        for limit in (2, 3, 5, 8):
            parts = partition_with_limit(adjacency, 0, unit_weights, limit)
            assert 1 <= len(parts) <= max(limit, 2)

    def test_never_collapses_multi_node_tree_to_one_part(self):
        # A pathological weighting where the first delta already yields a
        # single partition: the forced split must still produce 2 parts.
        adjacency = {0: [1, 2], 1: [], 2: []}
        weights = {0: 0.0, 1: 0.0, 2: 0.0}
        parts = partition_with_limit(adjacency, 0, weights, 4)
        assert len(parts) >= 2

    def test_single_node_tree(self):
        parts = partition_with_limit({0: []}, 0, {0: 5.0}, 4)
        assert parts == [[0]]

    def test_bad_max_partitions(self, adjacency, unit_weights):
        with pytest.raises(ValueError):
            partition_with_limit(adjacency, 0, unit_weights, 0)

    def test_bad_growth(self, adjacency, unit_weights):
        with pytest.raises(ValueError):
            partition_with_limit(adjacency, 0, unit_weights, 3, growth=1.0)

    def test_coverage_preserved(self, adjacency, unit_weights):
        parts = partition_with_limit(adjacency, 0, unit_weights, 3)
        seen = sorted(n for part in parts for n in part)
        assert seen == list(range(8))

    def test_paper_setting_ten_partitions(self):
        # A 60-node caterpillar with unit weights partitions into ≤ 10.
        adjacency = {i: [i + 1] for i in range(59)}
        adjacency[59] = []
        weights = {i: 1.0 for i in range(60)}
        parts = partition_with_limit(adjacency, 0, weights, 10)
        assert len(parts) <= 10
        assert sorted(n for p in parts for n in p) == list(range(60))
