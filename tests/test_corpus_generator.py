"""Unit tests for repro.corpus.generator."""

from __future__ import annotations

import pytest

from repro.corpus.generator import CorpusGenerator, TopicSpec
from repro.hierarchy.generator import generate_hierarchy


@pytest.fixture(scope="module")
def hierarchy():
    return generate_hierarchy(target_size=400, seed=11)


@pytest.fixture()
def generator(hierarchy):
    return CorpusGenerator(hierarchy, seed=3)


def topic(hierarchy, **overrides) -> TopicSpec:
    anchor = hierarchy.children(hierarchy.root)[0]
    other = hierarchy.children(hierarchy.root)[1]
    defaults = dict(
        keyword="prothymosin",
        n_citations=40,
        anchors=((anchor, 1.0), (other, 0.5)),
    )
    defaults.update(overrides)
    return TopicSpec(**defaults)


class TestTopicSpec:
    def test_valid(self, hierarchy):
        assert topic(hierarchy).n_citations == 40

    def test_rejects_zero_citations(self, hierarchy):
        with pytest.raises(ValueError):
            topic(hierarchy, n_citations=0)

    def test_rejects_empty_anchors(self, hierarchy):
        with pytest.raises(ValueError):
            topic(hierarchy, anchors=())

    def test_rejects_index_smaller_than_annotations(self, hierarchy):
        with pytest.raises(ValueError):
            topic(hierarchy, annotations_per_citation=20, index_per_citation=10)

    def test_rejects_bad_background_fraction(self, hierarchy):
        with pytest.raises(ValueError):
            topic(hierarchy, background_fraction=1.0)


class TestGenerateTopic:
    def test_generates_requested_count(self, generator, hierarchy):
        citations = generator.generate_topic(topic(hierarchy))
        assert len(citations) == 40

    def test_unique_pmids(self, generator, hierarchy):
        citations = generator.generate_topic(topic(hierarchy))
        pmids = [c.pmid for c in citations]
        assert len(set(pmids)) == len(pmids)

    def test_keyword_in_every_title(self, generator, hierarchy):
        citations = generator.generate_topic(topic(hierarchy))
        assert all("prothymosin" in c.title for c in citations)

    def test_annotations_subset_of_index(self, generator, hierarchy):
        for citation in generator.generate_topic(topic(hierarchy)):
            assert set(citation.mesh_annotations) <= set(citation.index_concepts)

    def test_concepts_cluster_around_anchors(self, generator, hierarchy):
        spec = topic(hierarchy, background_fraction=0.05)
        anchor = spec.anchors[0][0]
        anchor_subtree = set(hierarchy.subtree(anchor))
        in_anchor = 0
        total = 0
        for citation in generator.generate_topic(spec):
            total += len(citation.index_concepts)
            in_anchor += sum(1 for c in citation.index_concepts if c in anchor_subtree)
        # The dominant anchor should attract a large share of associations.
        assert in_anchor / total > 0.3

    def test_deterministic_given_seed(self, hierarchy):
        spec = topic(hierarchy)
        a = CorpusGenerator(hierarchy, seed=5).generate_topic(spec)
        b = CorpusGenerator(hierarchy, seed=5).generate_topic(spec)
        assert [c.pmid for c in a] == [c.pmid for c in b]
        assert [c.index_concepts for c in a] == [c.index_concepts for c in b]

    def test_annotation_locality(self, generator, hierarchy):
        # Focus clustering: a citation's concepts should include related
        # (parent/child) pairs, not only scattered singletons.
        citations = generator.generate_topic(topic(hierarchy))
        related_pairs = 0
        for citation in citations:
            concepts = set(citation.index_concepts)
            for concept in concepts:
                parent = hierarchy.parent(concept)
                if parent in concepts:
                    related_pairs += 1
                    break
        assert related_pairs > len(citations) * 0.5


class TestBackground:
    def test_background_counts_cover_all_non_root_concepts(self, generator, hierarchy):
        counts = generator.background_counts(scale=1000)
        assert set(counts) == set(range(1, len(hierarchy)))
        assert all(count >= 1 for count in counts.values())

    def test_background_counts_scale_with_subtree_size(self, generator, hierarchy):
        counts = generator.background_counts(scale=10_000)
        top = hierarchy.children(hierarchy.root)
        biggest = max(top, key=hierarchy.subtree_size)
        a_leaf = hierarchy.leaves()[len(hierarchy.leaves()) // 2]
        assert counts[biggest] > counts[a_leaf]

    def test_background_citations_have_no_topic_keyword(self, generator):
        citations = generator.generate_background(20)
        assert len(citations) == 20
        assert all("prothymosin" not in c.title for c in citations)
