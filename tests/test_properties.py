"""Property-based tests (hypothesis) on the core invariants."""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.complexity.mes import MESInstance, mes_optimum
from repro.complexity.reduction import mes_to_ted, ted_subtree_count_for_k
from repro.complexity.ted import ted_best_duplicates
from repro.core.active_tree import ActiveTree
from repro.core.edgecut import component_edges, cut_components, is_valid_edgecut
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import CutTree, OptEdgeCut
from repro.core.partition import k_partition
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.concept import ConceptHierarchy
from repro.storage.index import InvertedIndex, tokenize


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def hierarchies(draw, min_nodes: int = 2, max_nodes: int = 25):
    """Random hierarchy encoded as a parent vector."""
    n = draw(st.integers(min_nodes, max_nodes))
    h = ConceptHierarchy(root_label="root")
    for node in range(1, n):
        parent = draw(st.integers(0, node - 1))
        h.add_child(parent, "n%d" % node)
    return h


@st.composite
def navigation_scenarios(draw, max_nodes: int = 20, max_citations: int = 30):
    """(hierarchy, annotations, tree) with random sparse annotations."""
    h = draw(hierarchies(min_nodes=2, max_nodes=max_nodes))
    annotations: Dict[int, Set[int]] = {}
    for node in range(1, len(h)):
        if draw(st.booleans()):
            ids = draw(
                st.sets(st.integers(1, max_citations), min_size=1, max_size=8)
            )
            annotations[node] = ids
    tree = NavigationTree.build(h, annotations)
    return h, annotations, tree


@st.composite
def random_valid_cuts(draw, tree: NavigationTree, component):
    """A random valid EdgeCut: greedily add non-conflicting edges."""
    edges = component_edges(tree, component)
    chosen: List[Tuple[int, int]] = []
    for edge in edges:
        if not draw(st.booleans()):
            continue
        candidate = chosen + [edge]
        if is_valid_edgecut(tree, component, candidate):
            chosen.append(edge)
    return chosen


# ---------------------------------------------------------------------------
# Maximum embedding
# ---------------------------------------------------------------------------
class TestEmbeddingProperties:
    @given(navigation_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_kept_nodes_are_exactly_the_annotated_plus_root(self, scenario):
        h, annotations, tree = scenario
        expected = {n for n, ids in annotations.items() if ids} | {h.root}
        assert set(tree.nodes()) == expected

    @given(navigation_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_embedding_preserves_ancestry_both_ways(self, scenario):
        h, _, tree = scenario
        nodes = tree.nodes()
        for a in nodes:
            for b in nodes:
                assert h.is_ancestor(a, b) == tree.is_tree_ancestor(a, b)

    @given(navigation_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_subtree_results_monotone_in_ancestry(self, scenario):
        _, _, tree = scenario
        for parent, child in tree.edges():
            assert tree.subtree_results(child) <= tree.subtree_results(parent)

    @given(navigation_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_root_subtree_results_is_union_of_annotations(self, scenario):
        _, annotations, tree = scenario
        union: Set[int] = set()
        for ids in annotations.values():
            union |= ids
        assert tree.all_results() == frozenset(union)


# ---------------------------------------------------------------------------
# EdgeCuts and the active tree
# ---------------------------------------------------------------------------
class TestEdgeCutProperties:
    @given(st.data(), navigation_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_random_valid_cut_partitions_component(self, data, scenario):
        _, _, tree = scenario
        component = frozenset(tree.iter_dfs())
        cut = data.draw(random_valid_cuts(tree, component))
        if not cut:
            return
        upper, lowers = cut_components(tree, component, tree.root, cut)
        pieces = [upper] + list(lowers.values())
        assert frozenset().union(*pieces) == component
        assert sum(len(p) for p in pieces) == len(component)

    @given(st.data(), navigation_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_active_tree_closed_under_expand(self, data, scenario):
        _, _, tree = scenario
        active = ActiveTree(tree)
        for _ in range(3):
            roots = active.component_roots()
            if not roots:
                break
            node = data.draw(st.sampled_from(sorted(roots)))
            cut = data.draw(random_valid_cuts(tree, active.component(node)))
            if not cut:
                break
            active.expand(node, cut)
            # Invariant: non-singleton components are disjoint and every
            # node is visible or inside exactly one component.
            seen: Set[int] = set()
            for root in active.component_roots():
                members = active.component(root)
                assert not (seen & (members - {root}))
                seen |= members
            for n in tree.iter_dfs():
                assert active.is_visible(n) or any(
                    n in active.component(r) for r in active.component_roots()
                )

    @given(st.data(), navigation_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_backtrack_restores_exact_state(self, data, scenario):
        _, _, tree = scenario
        active = ActiveTree(tree)
        before_visible = set(active.visible_nodes())
        component = active.component(tree.root) if active.is_expandable(tree.root) else None
        if component is None:
            return
        cut = data.draw(random_valid_cuts(tree, component))
        if not cut:
            return
        active.expand(tree.root, cut)
        active.backtrack()
        assert set(active.visible_nodes()) == before_visible


# ---------------------------------------------------------------------------
# Opt-EdgeCut and the heuristic
# ---------------------------------------------------------------------------
class TestOptimizerProperties:
    @given(navigation_scenarios(max_nodes=9))
    @settings(max_examples=40, deadline=None)
    def test_opt_cut_never_worse_than_any_cut(self, scenario):
        _, _, tree = scenario
        if tree.size() < 2:
            return
        probs = ProbabilityModel(tree, lambda n: 100)
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        solver = OptEdgeCut(cut_tree, probs)
        best = solver.solve()
        full = frozenset(range(len(cut_tree)))
        for cut in solver._enumerate_cuts(0, full):
            if not cut:
                continue
            assert best.expansion_term <= solver._expansion_term(full, 0, cut) + 1e-9

    @given(navigation_scenarios(max_nodes=25))
    @settings(max_examples=40, deadline=None)
    def test_heuristic_cut_is_always_valid(self, scenario):
        _, _, tree = scenario
        if tree.size() < 2:
            return
        probs = ProbabilityModel(tree, lambda n: 100)
        strategy = HeuristicReducedOpt(tree, probs, max_reduced_nodes=6)
        component = frozenset(tree.iter_dfs())
        decision = strategy.best_cut(component, tree.root)
        assert decision.cut
        assert is_valid_edgecut(tree, component, decision.cut)
        assert decision.reduced_size <= max(6, 2)


# ---------------------------------------------------------------------------
# Baseline strategies
# ---------------------------------------------------------------------------
class TestBaselineStrategyProperties:
    @given(navigation_scenarios(max_nodes=20), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_paged_static_pages_partition_children(self, scenario, page_size):
        """Paging reveals every child exactly once, in ≤ ceil(n/k) pages."""
        from repro.core.paged_static import PagedStaticNavigation

        _, _, tree = scenario
        if tree.size() < 2:
            return
        strategy = PagedStaticNavigation(tree, page_size=page_size)
        active = ActiveTree(tree)
        seen: Set[int] = set()
        pages = 0
        while active.is_expandable(tree.root):
            decision = strategy.choose_cut(active, tree.root)
            if not decision.cut:
                break
            revealed = {child for _, child in decision.cut}
            assert revealed.isdisjoint(seen)
            assert len(revealed) <= page_size
            seen |= revealed
            active.expand(tree.root, decision.cut)
            pages += 1
            assert pages <= len(tree.children(tree.root)) + 1
        assert seen == set(tree.children(tree.root))

    @given(navigation_scenarios(max_nodes=20))
    @settings(max_examples=40, deadline=None)
    def test_gopubmed_cuts_are_valid(self, scenario):
        from repro.core.gopubmed import GoPubMedNavigation

        _, _, tree = scenario
        if tree.size() < 2:
            return
        strategy = GoPubMedNavigation(tree, top_k=3)
        active = ActiveTree(tree)
        for _ in range(5):
            roots = active.component_roots()
            if not roots:
                break
            node = sorted(roots)[0]
            decision = strategy.choose_cut(active, node)
            if not decision.cut:
                break
            assert is_valid_edgecut(tree, active.component(node), decision.cut)
            active.expand(node, decision.cut)


# ---------------------------------------------------------------------------
# Probabilities
# ---------------------------------------------------------------------------
class TestProbabilityProperties:
    @given(navigation_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_explore_is_a_distribution(self, scenario):
        _, _, tree = scenario
        probs = ProbabilityModel(tree, lambda n: 100)
        values = [probs.explore_node(n) for n in tree.iter_dfs()]
        assert all(v >= 0 for v in values)
        if tree.size() > 1:
            assert math.isclose(sum(values), 1.0, rel_tol=1e-9)

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=10),
        st.integers(0, 200),
    )
    @settings(max_examples=100, deadline=None)
    def test_expand_probability_bounded(self, counts, distinct):
        h = ConceptHierarchy()
        h.add_child(0, "a")
        tree = NavigationTree.build(h, {1: {1}})
        probs = ProbabilityModel(tree, lambda n: 100)
        value = probs.expand_from_distribution(counts, distinct)
        assert 0.0 <= value <= 1.0


# ---------------------------------------------------------------------------
# k-partition
# ---------------------------------------------------------------------------
class TestPartitionProperties:
    @given(hierarchies(min_nodes=2, max_nodes=30), st.floats(0.5, 20.0))
    @settings(max_examples=60, deadline=None)
    def test_partition_covers_and_is_contiguous(self, h, delta):
        adjacency = {n: list(h.children(n)) for n in range(len(h))}
        weights = {n: float((n * 7) % 5) for n in range(len(h))}
        parts = k_partition(adjacency, 0, weights, delta)
        seen = sorted(n for part in parts for n in part)
        assert seen == list(range(len(h)))
        for part in parts:
            members = set(part)
            root = part[0]
            for member in part:
                if member != root:
                    assert h.parent(member) in members


# ---------------------------------------------------------------------------
# Theorem 1 reduction
# ---------------------------------------------------------------------------
class TestReductionProperties:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_mes_and_ted_optima_agree(self, data):
        n = data.draw(st.integers(2, 5))
        vertices = list(range(n))
        edges = []
        for u in range(n):
            for v in range(u + 1, n):
                weight = data.draw(st.integers(0, 4))
                if weight:
                    edges.append((u, v, weight))
        instance = MESInstance.from_edges(vertices, edges)
        tree, _ = mes_to_ted(instance)
        k = data.draw(st.integers(1, n))
        assert ted_best_duplicates(
            tree, ted_subtree_count_for_k(instance, k)
        ) == mes_optimum(instance, k)


# ---------------------------------------------------------------------------
# Keyword index
# ---------------------------------------------------------------------------
class TestIndexProperties:
    @given(st.lists(st.text(alphabet="abcde ", min_size=1, max_size=30), min_size=1, max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_search_results_contain_all_query_terms(self, docs):
        index = InvertedIndex()
        for i, doc in enumerate(docs):
            index.add_document(i, doc)
        query = docs[0]
        terms = set(tokenize(query))
        for doc_id in index.search(query):
            doc_terms = set(tokenize(docs[doc_id]))
            assert terms <= doc_terms

    @given(st.text(alphabet="abcXYZ 123+-/", max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_tokenize_is_lowercase_and_stable(self, text):
        tokens = tokenize(text)
        assert tokens == tokenize(text.lower())
        assert all(t == t.lower() for t in tokens)
