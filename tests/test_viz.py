"""Unit tests for repro.viz.render."""

from __future__ import annotations


from repro.core.active_tree import ActiveTree
from repro.viz.render import render_active_tree, render_navigation_tree, render_rows


class TestRenderNavigationTree:
    def test_contains_labels_and_counts(self, fragment_tree):
        text = render_navigation_tree(fragment_tree)
        assert "MeSH (" in text
        assert "Apoptosis (35)" in text

    def test_root_count_is_distinct_total(self, fragment_tree):
        text = render_navigation_tree(fragment_tree)
        first_line = text.splitlines()[0]
        assert first_line == "MeSH (%d)" % len(fragment_tree.all_results())

    def test_truncation_adds_more_nodes_line(self, fragment_tree):
        text = render_navigation_tree(fragment_tree, max_children=1)
        assert "more nodes" in text

    def test_max_depth_limits_output(self, fragment_tree):
        shallow = render_navigation_tree(fragment_tree, max_depth=1)
        deep = render_navigation_tree(fragment_tree)
        assert len(shallow.splitlines()) < len(deep.splitlines())
        assert "subtree(s) below" in shallow

    def test_highlight_marks_nodes(self, fragment_tree, fragment_hierarchy):
        apoptosis = fragment_hierarchy.by_label("Apoptosis")
        text = render_navigation_tree(fragment_tree, highlight=[apoptosis])
        assert "Apoptosis (35) *" in text

    def test_indentation_reflects_depth(self, fragment_tree):
        lines = render_navigation_tree(fragment_tree).splitlines()
        assert lines[0].startswith("MeSH")
        assert any(line.startswith("  ") for line in lines[1:])


class TestRenderActiveTree:
    def test_initial_view_is_root_with_hyperlink(self, fragment_tree):
        active = ActiveTree(fragment_tree)
        text = render_active_tree(active)
        assert text == "MeSH (%d) >>>" % len(fragment_tree.all_results())

    def test_after_expansion_shows_revealed_nodes(self, fragment_tree, fragment_hierarchy):
        active = ActiveTree(fragment_tree)
        cell_death = fragment_hierarchy.by_label("Cell Death")
        parent = fragment_tree.parent(cell_death)
        active.expand(fragment_tree.root, [(parent, cell_death)])
        text = render_active_tree(active)
        assert "Cell Death" in text

    def test_render_rows_marks_highlights(self, fragment_tree):
        active = ActiveTree(fragment_tree)
        text = render_rows(active.visualize(), marked=[fragment_tree.root])
        assert text.endswith("*")
