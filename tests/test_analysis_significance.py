"""Unit tests for the paired significance analysis."""

from __future__ import annotations

import pytest

from repro.analysis.significance import (
    paired_bootstrap_ci,
    sign_test,
    summarize_improvements,
    wilcoxon_signed_rank,
)

BASELINE = [210.0, 232, 247, 192, 197, 164, 293, 225, 235, 150]
TREATMENT = [10.0, 27, 16, 12, 32, 14, 26, 12, 20, 21]


class TestBootstrap:
    def test_mean_improvement_matches_hand_computation(self):
        mean, low, high = paired_bootstrap_ci(BASELINE, TREATMENT, seed=1)
        expected = sum(1 - t / b for b, t in zip(BASELINE, TREATMENT)) / len(BASELINE)
        assert mean == pytest.approx(expected)
        assert low <= mean <= high

    def test_interval_narrows_with_confidence(self):
        _, low95, high95 = paired_bootstrap_ci(BASELINE, TREATMENT, confidence=0.95, seed=2)
        _, low50, high50 = paired_bootstrap_ci(BASELINE, TREATMENT, confidence=0.50, seed=2)
        assert high50 - low50 < high95 - low95

    def test_deterministic_given_seed(self):
        a = paired_bootstrap_ci(BASELINE, TREATMENT, seed=9)
        b = paired_bootstrap_ci(BASELINE, TREATMENT, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap_ci([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_bootstrap_ci([], [])
        with pytest.raises(ValueError):
            paired_bootstrap_ci([0.0], [1.0])
        with pytest.raises(ValueError):
            paired_bootstrap_ci([1.0], [0.5], confidence=1.5)


class TestWilcoxon:
    def test_decisive_wins_are_significant(self):
        assert wilcoxon_signed_rank(BASELINE, TREATMENT) < 0.01

    def test_identical_costs_not_significant(self):
        assert wilcoxon_signed_rank([5.0, 6.0, 7.0], [5.0, 6.0, 7.0]) == 1.0

    def test_losses_are_not_significant(self):
        assert wilcoxon_signed_rank(TREATMENT, BASELINE) > 0.9


class TestSignTest:
    def test_all_wins(self):
        # 10 wins out of 10: p = 2^-10.
        assert sign_test(BASELINE, TREATMENT) == pytest.approx(2.0 ** -10)

    def test_coin_flip_not_significant(self):
        baseline = [10.0, 10, 10, 10]
        treatment = [9.0, 11, 9, 11]
        assert sign_test(baseline, treatment) > 0.3

    def test_ties_are_uninformative(self):
        assert sign_test([5.0, 5.0], [5.0, 5.0]) == 1.0


class TestSummary:
    def test_full_summary(self):
        summary = summarize_improvements(BASELINE, TREATMENT, seed=3)
        assert summary.n_pairs == 10
        assert summary.mean_improvement > 0.8
        assert summary.ci_low > 0.7
        assert summary.wilcoxon_p < 0.01
        assert summary.sign_p < 0.01
