"""Unit tests for repro.core.cost_model."""

from __future__ import annotations

import pytest

from repro.core.cost_model import CostLedger, CostParams


class TestCostParams:
    def test_paper_defaults_are_all_one(self):
        params = CostParams()
        assert params.expand_cost == 1.0
        assert params.reveal_cost == 1.0
        assert params.citation_cost == 1.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostParams(expand_cost=-1)
        with pytest.raises(ValueError):
            CostParams(citation_cost=-0.1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CostParams().expand_cost = 2.0


class TestCostLedger:
    def test_paper_worked_example(self):
        # Paper §III: reaching Cell Proliferation costs 119 — 3 EXPANDs on
        # the root revealing 11 concepts, 1 EXPAND revealing 5, then
        # SHOWRESULTS listing 99 citations.
        ledger = CostLedger()
        ledger.charge_expand(3)
        ledger.charge_expand(4)
        ledger.charge_expand(4)
        ledger.charge_expand(5)
        ledger.charge_show_results(99)
        assert ledger.expand_actions == 4
        assert ledger.concepts_revealed == 16
        assert ledger.navigation_cost == 20
        assert ledger.total_cost == 119

    def test_navigation_cost_excludes_citations(self):
        ledger = CostLedger()
        ledger.charge_expand(2)
        ledger.charge_show_results(50)
        assert ledger.navigation_cost == 3
        assert ledger.total_cost == 53

    def test_custom_unit_costs(self):
        ledger = CostLedger(params=CostParams(expand_cost=4, reveal_cost=2, citation_cost=0.5))
        ledger.charge_expand(3)
        ledger.charge_show_results(10)
        assert ledger.navigation_cost == 4 + 3 * 2
        assert ledger.total_cost == 10 + 5

    def test_negative_reveal_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge_expand(-1)

    def test_negative_citations_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge_show_results(-1)

    def test_fresh_ledger_is_free(self):
        assert CostLedger().total_cost == 0.0
