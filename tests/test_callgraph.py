"""Tests for the whole-program engine: ProjectContext, call graph, taint.

Covers the resolution edge cases the interprocedural rules lean on —
aliased imports, relative imports, ``staticmethod``/``classmethod`` and
decorated functions, ``self.`` dispatch (including one level of typed
indirection), suffix-based module resolution for out-of-tree fixtures —
and the degradation contract: dynamic calls (subscript dispatch,
``getattr``) become warnings, unresolvable imports resolve to external
targets, and nothing ever raises.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analyzer.callgraph import build_callgraph, get_callgraph  # noqa: E402
from tools.analyzer.core import ProjectIndex  # noqa: E402
from tools.analyzer.project import ProjectContext, module_dotted  # noqa: E402
from tools.analyzer.runner import _index, _python_files  # noqa: E402
from tools.analyzer.taint import direct_sources, is_key_root, key_taint  # noqa: E402


def build_project(tmp_path, files):
    """Write ``{relpath: source}`` fixtures and build their context."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    index = _index(_python_files([tmp_path]))
    return index.project()


def edge_pairs(graph):
    return {
        (site.caller, site.callee)
        for sites in graph.edges.values()
        for site in sites
    }


def find_function(project, suffix):
    matches = [q for q in project.functions if q.endswith(suffix)]
    assert len(matches) == 1, (suffix, matches)
    return matches[0]


class TestModuleResolution:
    def test_module_dotted_collapses_init(self):
        assert module_dotted("src/repro/core/__init__.py") == "src.repro.core"
        assert module_dotted("src/repro/core/foo.py") == "src.repro.core.foo"

    def test_suffix_resolution_for_out_of_tree_fixtures(self, tmp_path):
        project = build_project(
            tmp_path, {"src/repro/core/util.py": "def f():\n    return 1\n"}
        )
        full = project.resolve_module("repro.core.util")
        assert full is not None and full.endswith("src.repro.core.util")

    def test_ambiguous_suffix_resolves_to_nothing(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "a/util.py": "def f():\n    return 1\n",
                "b/util.py": "def g():\n    return 2\n",
            },
        )
        assert project.resolve_module("util") is None


class TestImportAliases:
    def test_plain_module_alias(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/lib.py": "def helper():\n    return 1\n",
                "pkg/use.py": (
                    "import pkg.lib as renamed\n\n\n"
                    "def caller():\n    return renamed.helper()\n"
                ),
            },
        )
        graph = build_callgraph(project)
        caller = find_function(project, "pkg.use.caller")
        callee = find_function(project, "pkg.lib.helper")
        assert (caller, callee) in edge_pairs(graph)

    def test_from_import_with_alias(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/lib.py": "def helper():\n    return 1\n",
                "pkg/use.py": (
                    "from pkg.lib import helper as h\n\n\n"
                    "def caller():\n    return h()\n"
                ),
            },
        )
        graph = build_callgraph(project)
        caller = find_function(project, "pkg.use.caller")
        callee = find_function(project, "pkg.lib.helper")
        assert (caller, callee) in edge_pairs(graph)

    def test_relative_import(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/lib.py": "def helper():\n    return 1\n",
                "pkg/use.py": (
                    "from .lib import helper\n\n\n"
                    "def caller():\n    return helper()\n"
                ),
            },
        )
        graph = build_callgraph(project)
        caller = find_function(project, "pkg.use.caller")
        callee = find_function(project, "pkg.lib.helper")
        assert (caller, callee) in edge_pairs(graph)

    def test_unresolvable_import_becomes_external(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "use.py": (
                    "import nosuchpackage.mod as m\n\n\n"
                    "def caller():\n    return m.run()\n"
                )
            },
        )
        graph = build_callgraph(project)
        caller = find_function(project, "use.caller")
        targets = [e.target for e in graph.externals.get(caller, [])]
        assert "nosuchpackage.mod.run" in targets


class TestMethodDispatch:
    CLASS_SOURCE = (
        "def decorate(f):\n"
        "    return f\n"
        "\n"
        "\n"
        "class Worker:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
        "\n"
        "    @staticmethod\n"
        "    def leaf():\n"
        "        return 1\n"
        "\n"
        "    @classmethod\n"
        "    def build(cls):\n"
        "        return cls.leaf()\n"
        "\n"
        "    @decorate\n"
        "    def decorated(self):\n"
        "        return self.leaf()\n"
        "\n"
        "    def run(self):\n"
        "        return self.decorated()\n"
    )

    def test_self_and_cls_calls_resolve(self, tmp_path):
        project = build_project(tmp_path, {"worker.py": self.CLASS_SOURCE})
        graph = build_callgraph(project)
        pairs = edge_pairs(graph)
        run = find_function(project, "Worker.run")
        decorated = find_function(project, "Worker.decorated")
        build = find_function(project, "Worker.build")
        leaf = find_function(project, "Worker.leaf")
        assert (run, decorated) in pairs
        assert (build, leaf) in pairs
        assert (decorated, leaf) in pairs

    def test_static_and_classmethod_markers(self, tmp_path):
        project = build_project(tmp_path, {"worker.py": self.CLASS_SOURCE})
        leaf = project.functions[find_function(project, "Worker.leaf")]
        build = project.functions[find_function(project, "Worker.build")]
        decorated = project.functions[find_function(project, "Worker.decorated")]
        assert leaf.is_static and not leaf.is_classmethod
        assert build.is_classmethod and not build.is_static
        assert "decorate" in decorated.decorators

    def test_constructor_call_edges_to_init(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "mod.py": (
                    "class Thing:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "\n"
                    "\n"
                    "def make():\n"
                    "    return Thing()\n"
                )
            },
        )
        graph = build_callgraph(project)
        make = find_function(project, "mod.make")
        init = find_function(project, "Thing.__init__")
        assert (make, init) in edge_pairs(graph)

    def test_inherited_method_found_through_base(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "mod.py": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        return 1\n"
                    "\n"
                    "\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.shared()\n"
                )
            },
        )
        graph = build_callgraph(project)
        run = find_function(project, "Child.run")
        shared = find_function(project, "Base.shared")
        assert (run, shared) in edge_pairs(graph)

    def test_typed_attribute_indirection(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "tree.py": (
                    "class Tree:\n"
                    "    def results(self, n):\n"
                    "        return []\n"
                ),
                "owner.py": (
                    "from tree import Tree\n"
                    "\n"
                    "\n"
                    "class Owner:\n"
                    "    def __init__(self, tree: Tree):\n"
                    "        self.tree = tree\n"
                    "\n"
                    "    def fetch(self, n):\n"
                    "        return self.tree.results(n)\n"
                ),
            },
        )
        graph = build_callgraph(project)
        fetch = find_function(project, "Owner.fetch")
        results = find_function(project, "Tree.results")
        assert (fetch, results) in edge_pairs(graph)

    def test_annotated_parameter_dispatch(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "mod.py": (
                    "class Store:\n"
                    "    def get(self, k):\n"
                    "        return k\n"
                    "\n"
                    "\n"
                    "def read(store: Store, k):\n"
                    "    return store.get(k)\n"
                )
            },
        )
        graph = build_callgraph(project)
        read = find_function(project, "mod.read")
        get = find_function(project, "Store.get")
        assert (read, get) in edge_pairs(graph)


class TestDynamicDegradation:
    def test_subscript_and_getattr_calls_become_dynamic(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "mod.py": (
                    "HANDLERS = {}\n"
                    "\n"
                    "\n"
                    "def dispatch(kind, obj):\n"
                    "    HANDLERS[kind]()\n"
                    "    getattr(obj, 'run')()\n"
                )
            },
        )
        graph = build_callgraph(project)
        dispatch = find_function(project, "mod.dispatch")
        kinds = [d.description for d in graph.dynamics.get(dispatch, [])]
        assert any("subscript" in k for k in kinds)
        assert any("getattr" in k for k in kinds)

    def test_computed_receiver_never_crashes(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "mod.py": (
                    "import random\n"
                    "\n"
                    "\n"
                    "def draw():\n"
                    "    return random.Random(7).random()\n"
                    "\n"
                    "\n"
                    "def weird(x):\n"
                    "    return (x or draw)()\n"
                )
            },
        )
        graph = build_callgraph(project)  # must not raise
        draw = find_function(project, "mod.draw")
        targets = [e.target for e in graph.externals.get(draw, [])]
        # The constructor is a (whitelisted) external; the ``.random()``
        # method call on the computed receiver resolves to nothing —
        # in particular not to the unseeded module-level function.
        assert "random.Random" in targets
        assert "random.random" not in targets
        graph_sources = direct_sources(graph, project.functions[draw])
        assert graph_sources == []

    def test_empty_project_reachability(self):
        project = ProjectContext.build(ProjectIndex())
        graph = get_callgraph(project)
        parents, order = graph.reachable_from([])
        assert parents == {} and order == []


class TestTaintClosure:
    def test_roots_and_chain(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "keys.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def _stamp():\n"
                    "    return time.time()\n"
                    "\n"
                    "\n"
                    "def content_key(parts):\n"
                    "    return str(_stamp()) + str(parts)\n"
                )
            },
        )
        result = key_taint(project)
        assert len(result.violations) == 1
        symbol, hit, chain = result.violations[0]
        assert symbol.name == "_stamp"
        assert "time.time" in hit.description
        assert chain == "keys.content_key -> keys._stamp"

    def test_stage_key_method_is_root(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "stages.py": (
                    "import uuid\n"
                    "\n"
                    "\n"
                    "class NavStage:\n"
                    "    def key(self):\n"
                    "        return str(uuid.uuid4())\n"
                    "\n"
                    "\n"
                    "class PlainTable:\n"
                    "    def key(self):\n"
                    "        return str(uuid.uuid4())\n"
                )
            },
        )
        stage_key = project.functions[find_function(project, "NavStage.key")]
        other_key = project.functions[find_function(project, "PlainTable.key")]
        assert is_key_root(stage_key)
        assert not is_key_root(other_key)
        result = key_taint(project)
        assert [s.class_name for s, _, _ in result.violations] == ["NavStage"]

    def test_non_root_nondeterminism_is_ignored(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "other.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def elapsed():\n"
                    "    return time.time()\n"
                )
            },
        )
        result = key_taint(project)
        assert result.violations == []
        assert result.unprovable == []

    def test_direct_sources_flags_unsorted_set_iteration(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "keys.py": (
                    "def content_key(items):\n"
                    "    return [x for x in set(items)]\n"
                )
            },
        )
        result = key_taint(project)
        assert len(result.violations) == 1
        _, hit, _ = result.violations[0]
        assert "set iteration" in hit.description

    def test_sorted_set_is_clean(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "keys.py": (
                    "import hashlib\n"
                    "\n"
                    "\n"
                    "def content_key(items):\n"
                    "    hasher = hashlib.sha256()\n"
                    "    for item in sorted(set(items)):\n"
                    "        hasher.update(str(item).encode())\n"
                    "    return hasher.hexdigest()\n"
                )
            },
        )
        graph = get_callgraph(project)
        symbol = project.functions[find_function(project, "keys.content_key")]
        assert direct_sources(graph, symbol) == []
        assert key_taint(project).violations == []
