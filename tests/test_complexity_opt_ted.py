"""Unit tests for the optimal TOPDOWN-EXHAUSTIVE cut solver."""

from __future__ import annotations

import pytest

from repro.complexity.opt_ted import ted_cost_curve, ted_optimal_cut
from repro.complexity.ted import ElementTree, ted_expected_cost


@pytest.fixture()
def duplicate_heavy_star() -> ElementTree:
    # Leaves 1 and 2 share many elements; leaf 3 is disjoint.  Keeping
    # 1 and 2 together gathers duplicates; separating 3 shortens listings.
    shared = ["s%d" % i for i in range(6)]
    return ElementTree(
        parents=[-1, 0, 0, 0],
        elements=[[], shared, shared, ["x", "y", "z"]],
    )


class TestOptimalCut:
    def test_optimum_no_worse_than_every_cut(self, duplicate_heavy_star):
        solution = ted_optimal_cut(duplicate_heavy_star)
        for cut in duplicate_heavy_star.enumerate_valid_cuts():
            assert solution.expected_cost <= ted_expected_cost(
                duplicate_heavy_star, cut
            ) + 1e-12

    def test_keeps_duplicate_pair_together(self, duplicate_heavy_star):
        solution = ted_optimal_cut(duplicate_heavy_star)
        # Edges (0,1) and (0,2) must not both be cut: separating the two
        # duplicate-heavy leaves doubles the expected listing length.
        severed = {child for _, child in solution.cut}
        assert not {1, 2} <= severed

    def test_single_node_tree(self):
        tree = ElementTree(parents=[-1], elements=[["a", "b"]])
        solution = ted_optimal_cut(tree)
        assert solution.cut == ()
        assert solution.n_subtrees == 1
        assert solution.expected_cost == pytest.approx(1 + 2)

    def test_solution_fields_consistent(self, duplicate_heavy_star):
        solution = ted_optimal_cut(duplicate_heavy_star)
        assert solution.n_subtrees == len(solution.cut) + 1
        assert solution.duplicates >= 0


class TestCostCurve:
    def test_curve_covers_reachable_subtree_counts(self, duplicate_heavy_star):
        curve = ted_cost_curve(duplicate_heavy_star)
        assert set(curve) == {1, 2, 3, 4}

    def test_curve_minimum_is_optimal_cost(self, duplicate_heavy_star):
        curve = ted_cost_curve(duplicate_heavy_star)
        solution = ted_optimal_cut(duplicate_heavy_star)
        assert min(curve.values()) == pytest.approx(solution.expected_cost)

    def test_curve_shows_the_tradeoff(self, duplicate_heavy_star):
        # With heavy duplication in one pair, a middle subtree count beats
        # both extremes: the optimum is neither the no-cut nor full split.
        curve = ted_cost_curve(duplicate_heavy_star)
        best_s = min(curve, key=curve.get)
        assert best_s not in (1,) or curve[1] <= curve[4]
