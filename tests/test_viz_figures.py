"""Unit tests for the ASCII bar-chart helpers."""

from __future__ import annotations

from repro.viz.figures import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_bars_scale_to_max(self):
        chart = bar_chart({"a": 10, "b": 5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_value_gets_no_bar(self):
        chart = bar_chart({"a": 10, "b": 0}, width=10)
        assert chart.splitlines()[1].count("#") == 0

    def test_small_nonzero_value_still_visible(self):
        chart = bar_chart({"a": 1000, "b": 1}, width=20)
        assert chart.splitlines()[1].count("#") == 1

    def test_values_printed_with_unit(self):
        chart = bar_chart({"x": 42}, unit="ms")
        assert "42ms" in chart

    def test_empty_input(self):
        assert bar_chart({}) == "(no data)"

    def test_labels_aligned(self):
        chart = bar_chart({"short": 1, "much longer label": 2})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestGroupedBarChart:
    def test_one_bar_per_series(self):
        chart = grouped_bar_chart(
            {"q1": {"static": 100, "bionav": 10}, "q2": {"static": 50, "bionav": 5}}
        )
        assert chart.count("static") == 2
        assert chart.count("bionav") == 2

    def test_shared_scale_across_groups(self):
        chart = grouped_bar_chart(
            {"q1": {"s": 100}, "q2": {"s": 50}}, width=10
        )
        lines = [l for l in chart.splitlines() if "#" in l]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_group_label_printed_once(self):
        chart = grouped_bar_chart({"query": {"a": 1, "b": 2}})
        assert chart.count("query") == 1

    def test_empty_input(self):
        assert grouped_bar_chart({}) == "(no data)"
