"""Tests for the §VII concept-by-concept association harvest."""

from __future__ import annotations

import pytest

from repro.eutils.client import EntrezClient
from repro.search.evaluator import FieldedEngineAdapter, FieldedSearchEngine
from repro.storage.database import BioNavDatabase
from repro.storage.harvest import ConceptHarvester


@pytest.fixture(scope="module")
def harvest_setup(request):
    workload = request.getfixturevalue("small_workload")
    fielded = FieldedSearchEngine(workload.medline, workload.hierarchy)
    client = EntrezClient(
        workload.medline, engine=FieldedEngineAdapter(fielded), rate_limit=500
    )
    return workload, ConceptHarvester(workload.hierarchy, client), client


class TestHarvest:
    def test_harvest_matches_direct_extraction(self, harvest_setup):
        """The paper's query-per-concept harvest and the direct extraction
        of BioNavDatabase.build must produce the same association table."""
        workload, harvester, _ = harvest_setup
        # Harvest a slice of concepts (full harvest is O(concepts × corpus)).
        concepts = [n for n in range(1, 120)]
        result = harvester.harvest(concepts=concepts)
        direct = BioNavDatabase.build(workload.hierarchy, workload.medline)
        for concept in concepts:
            assert result.associations.citations_for(concept) == (
                direct.associations.citations_for(concept)
            ), concept

    def test_stats_record_result_counts(self, harvest_setup):
        workload, harvester, _ = harvest_setup
        concepts = [n for n in range(1, 40)]
        result = harvester.harvest(concepts=concepts)
        for concept in concepts:
            assert result.stats.count(concept) == len(
                result.associations.citations_for(concept)
            )

    def test_rate_limit_windows_consumed(self, harvest_setup):
        workload, _, _ = harvest_setup
        fielded = FieldedSearchEngine(workload.medline, workload.hierarchy)
        tight_client = EntrezClient(
            workload.medline, engine=FieldedEngineAdapter(fielded), rate_limit=3
        )
        harvester = ConceptHarvester(workload.hierarchy, tight_client)
        result = harvester.harvest(concepts=list(range(1, 25)))
        # 24 concept queries through a 3-request window need several resets.
        assert result.quota_windows >= 24 // 3 - 1
        assert result.concepts_queried == 24
        assert result.requests_issued >= 24

    def test_default_harvests_every_non_root_concept(self, harvest_setup):
        workload, harvester, _ = harvest_setup
        # Restrict to a tiny hierarchy prefix via explicit list, but check
        # the default enumeration covers all non-root nodes.
        default_concepts = [
            n for n in range(len(workload.hierarchy)) if n != workload.hierarchy.root
        ]
        assert len(default_concepts) == len(workload.hierarchy) - 1
