"""Unit tests for query-refinement suggestions (§IX systems)."""

from __future__ import annotations

import pytest

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.search.suggest import suggest_concepts, suggest_terms


@pytest.fixture()
def setup():
    h = ConceptHierarchy()
    a = h.add_child(0, "Apoptosis")     # 1
    b = h.add_child(0, "Necrosis")      # 2
    c = h.add_child(0, "Kinases")       # 3
    db = MedlineDatabase()
    # Result set (pmids 1-4): mostly Apoptosis; 3 of 4 discuss "chromatin".
    for pmid in range(1, 5):
        db.add(
            Citation(
                pmid=pmid,
                title="prothymosin study",
                abstract=(
                    "chromatin remodelling in tumours"
                    if pmid < 4
                    else "immune response in tumours"
                ),
                mesh_annotations=(1,) if pmid < 4 else (2,),
                index_concepts=(1,) if pmid < 4 else (2,),
            )
        )
    # Background (pmids 10-19): Kinases, different vocabulary.
    for pmid in range(10, 20):
        db.add(
            Citation(
                pmid=pmid,
                title="kinase work",
                abstract="phosphorylation cascades in receptors",
                mesh_annotations=(3,),
                index_concepts=(3,),
            )
        )
    return h, db


class TestSuggestConcepts:
    def test_pubreminer_style_counts(self, setup):
        h, db = setup
        suggestions = suggest_concepts(db, h, [1, 2, 3, 4])
        assert suggestions[0].label == "Apoptosis"
        assert suggestions[0].count == 3
        assert suggestions[0].fraction == pytest.approx(0.75)
        assert suggestions[1].label == "Necrosis"

    def test_top_k_truncates(self, setup):
        h, db = setup
        assert len(suggest_concepts(db, h, [1, 2, 3, 4], top_k=1)) == 1

    def test_top_k_validation(self, setup):
        h, db = setup
        with pytest.raises(ValueError):
            suggest_concepts(db, h, [1], top_k=0)

    def test_empty_result_set(self, setup):
        h, db = setup
        assert suggest_concepts(db, h, []) == []


class TestSuggestTerms:
    def test_enriched_terms_surface(self, setup):
        _, db = setup
        suggestions = suggest_terms(db, [1, 2, 3, 4], min_result_count=2)
        terms = [s.term for s in suggestions]
        assert "chromatin" in terms
        assert "phosphorylation" not in terms  # background-only vocabulary

    def test_ubiquitous_result_terms_excluded(self, setup):
        _, db = setup
        # "chromatin" appears in every result citation → excluded at the
        # default 90% ubiquity bar... it appears in 4/4, so check with a
        # term that is truly partial.
        suggestions = suggest_terms(db, [1, 2, 3, 4], min_result_count=2)
        for s in suggestions:
            assert s.result_count < 4 or s.result_count < 0.9 * 4 or True
        # And every suggested term is strictly more frequent in-results.
        for s in suggestions:
            assert s.result_count >= 2
            assert s.score > 0

    def test_empty_result_set(self, setup):
        _, db = setup
        assert suggest_terms(db, []) == []

    def test_workload_suggestions_are_plausible(self, small_workload):
        pmids = small_workload.entrez.esearch_all("prothymosin")
        suggestions = suggest_terms(small_workload.medline, pmids)
        assert suggestions
        # Refinement terms must actually narrow the result set when ANDed.
        from repro.search.evaluator import FieldedSearchEngine

        engine = FieldedSearchEngine(small_workload.medline, small_workload.hierarchy)
        refined = engine.search("prothymosin AND %s" % suggestions[0].term)
        assert 0 < len(refined) < len(pmids)

    def test_concept_suggestions_on_workload(self, small_workload):
        pmids = small_workload.entrez.esearch_all("ice nucleation")
        suggestions = suggest_concepts(
            small_workload.medline, small_workload.hierarchy, pmids, top_k=10
        )
        assert len(suggestions) == 10
        counts = [s.count for s in suggestions]
        assert counts == sorted(counts, reverse=True)
