"""Unit tests for the imperfect-user (BACKTRACK) simulation."""

from __future__ import annotations

import random

import pytest

from repro.core.heuristic import HeuristicReducedOpt
from repro.core.imperfect import navigate_with_errors
from repro.core.simulator import navigate_to_target
from repro.core.static_nav import StaticNavigation


@pytest.fixture()
def heuristic(fragment_tree, fragment_probs):
    return HeuristicReducedOpt(fragment_tree, fragment_probs)


@pytest.fixture()
def target(fragment_hierarchy):
    return fragment_hierarchy.by_label("Apoptosis")


class TestNavigateWithErrors:
    def test_zero_error_matches_perfect_user(self, fragment_tree, fragment_probs, target):
        perfect = navigate_to_target(
            fragment_tree,
            HeuristicReducedOpt(fragment_tree, fragment_probs),
            target,
            show_results=False,
        )
        imperfect = navigate_with_errors(
            fragment_tree,
            HeuristicReducedOpt(fragment_tree, fragment_probs),
            target,
            error_rate=0.0,
            rng=random.Random(1),
        )
        assert imperfect.reached
        assert imperfect.wrong_turns == 0
        assert imperfect.navigation_cost == perfect.navigation_cost

    def test_errors_cost_extra(self, fragment_tree, fragment_probs, target):
        clean = navigate_with_errors(
            fragment_tree,
            HeuristicReducedOpt(fragment_tree, fragment_probs),
            target,
            error_rate=0.0,
            rng=random.Random(2),
        )
        noisy_costs = []
        for seed in range(8):
            noisy = navigate_with_errors(
                fragment_tree,
                HeuristicReducedOpt(fragment_tree, fragment_probs),
                target,
                error_rate=0.5,
                rng=random.Random(seed),
            )
            assert noisy.reached
            noisy_costs.append(noisy.navigation_cost)
        assert sum(noisy_costs) / len(noisy_costs) >= clean.navigation_cost

    def test_wrong_turns_are_backtracked(self, fragment_tree, fragment_probs, target):
        outcome = navigate_with_errors(
            fragment_tree,
            HeuristicReducedOpt(fragment_tree, fragment_probs),
            target,
            error_rate=0.7,
            rng=random.Random(5),
        )
        assert outcome.backtracks == outcome.wrong_turns

    def test_always_wrong_user_hits_step_budget(self, fragment_tree, fragment_probs, target):
        outcome = navigate_with_errors(
            fragment_tree,
            HeuristicReducedOpt(fragment_tree, fragment_probs),
            target,
            error_rate=1.0,
            rng=random.Random(3),
            max_steps=20,
        )
        # The first step is forced-correct (only the root is expandable);
        # afterwards a 100%-wrong user can still stall.
        assert outcome.expand_actions <= 20

    def test_static_strategy_supported(self, fragment_tree, target):
        outcome = navigate_with_errors(
            fragment_tree,
            StaticNavigation(fragment_tree),
            target,
            error_rate=0.3,
            rng=random.Random(4),
        )
        assert outcome.reached

    def test_error_rate_validation(self, fragment_tree, fragment_probs, target, heuristic):
        with pytest.raises(ValueError):
            navigate_with_errors(
                fragment_tree, heuristic, target, error_rate=1.5, rng=random.Random(0)
            )

    def test_unknown_target_raises(self, fragment_tree, heuristic):
        with pytest.raises(KeyError):
            navigate_with_errors(
                fragment_tree, heuristic, 99999, error_rate=0.0, rng=random.Random(0)
            )
