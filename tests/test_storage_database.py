"""Unit tests for repro.storage.database (off-line pre-processing)."""

from __future__ import annotations

import pytest

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.storage.database import BioNavDatabase


@pytest.fixture()
def hierarchy() -> ConceptHierarchy:
    h = ConceptHierarchy()
    h.add_child(0, "A")  # 1
    h.add_child(0, "B")  # 2
    h.add_child(1, "C")  # 3
    return h


@pytest.fixture()
def medline(hierarchy) -> MedlineDatabase:
    db = MedlineDatabase(background_counts={1: 50, 2: 10})
    db.add(
        Citation(
            pmid=100,
            title="prothymosin study",
            mesh_annotations=(1,),
            index_concepts=(1, 3),
        )
    )
    db.add(
        Citation(
            pmid=101,
            title="histone study",
            mesh_annotations=(2,),
            index_concepts=(2, 3),
        )
    )
    return db


@pytest.fixture()
def database(hierarchy, medline) -> BioNavDatabase:
    return BioNavDatabase.build(hierarchy, medline)


class TestBuild:
    def test_associations_extracted(self, database):
        assert database.associations.citations_for(3) == frozenset({100, 101})
        assert database.associations.citations_for(1) == frozenset({100})

    def test_denormalized_matches(self, database):
        assert database.denormalized.get(100) == (1, 3)

    def test_stats_include_background(self, database):
        assert database.medline_count(1) == 51  # 1 corpus + 50 background
        assert database.medline_count(3) == 2

    def test_index_searches_titles(self, database):
        assert database.index.search("prothymosin") == {100}


class TestOnlineAccess:
    def test_concepts_of_citations(self, database):
        assert database.concepts_of_citations([100, 101]) == {
            100: (1, 3),
            101: (2, 3),
        }

    def test_annotations_for_result(self, database):
        annotations = database.annotations_for_result([100, 101])
        assert annotations[3] == frozenset({100, 101})
        assert annotations[1] == frozenset({100})

    def test_annotations_for_partial_result(self, database):
        annotations = database.annotations_for_result([100])
        assert 2 not in annotations
        assert annotations[3] == frozenset({100})


class TestPersistence:
    def test_save_load_round_trip(self, database, medline, tmp_path):
        path = str(tmp_path / "bionav.json")
        database.save(path)
        loaded = BioNavDatabase.load(path, medline=medline)
        assert list(loaded.associations.iter_rows()) == list(
            database.associations.iter_rows()
        )
        assert loaded.medline_count(1) == database.medline_count(1)
        assert loaded.hierarchy.label(3) == "C"
        assert loaded.index.search("histone") == {101}

    def test_load_without_medline_leaves_index_empty(self, database, tmp_path):
        path = str(tmp_path / "bionav.json")
        database.save(path)
        loaded = BioNavDatabase.load(path)
        assert loaded.index.search("prothymosin") == set()
        # But associations still work (navigation from PMIDs).
        assert loaded.annotations_for_result([100])[1] == frozenset({100})
