"""Unit tests for the Monte-Carlo TOPDOWN user simulation."""

from __future__ import annotations

import random

import pytest

from repro.core.heuristic import HeuristicReducedOpt
from repro.core.montecarlo import estimate_expected_cost, sample_walk
from repro.core.static_nav import StaticNavigation


@pytest.fixture()
def heuristic(fragment_tree, fragment_probs):
    return HeuristicReducedOpt(fragment_tree, fragment_probs)


class TestSampleWalk:
    def test_walk_terminates_and_charges(self, fragment_tree, fragment_probs, heuristic):
        outcome = sample_walk(
            fragment_tree, fragment_probs, heuristic, random.Random(1)
        )
        assert outcome.cost > 0
        assert outcome.show_results + outcome.ignored >= 1

    def test_deterministic_given_rng_state(self, fragment_tree, fragment_probs, heuristic):
        a = sample_walk(fragment_tree, fragment_probs, heuristic, random.Random(7))
        b = sample_walk(fragment_tree, fragment_probs, heuristic, random.Random(7))
        assert a == b

    def test_walks_vary_across_seeds(self, fragment_tree, fragment_probs, heuristic):
        outcomes = {
            sample_walk(fragment_tree, fragment_probs, heuristic, random.Random(s)).cost
            for s in range(20)
        }
        assert len(outcomes) > 1

    def test_static_strategy_walkable(self, fragment_tree, fragment_probs):
        strategy = StaticNavigation(fragment_tree)
        outcome = sample_walk(
            fragment_tree, fragment_probs, strategy, random.Random(3)
        )
        assert outcome.cost > 0

    def test_expand_budget_respected(self, fragment_tree, fragment_probs, heuristic):
        outcome = sample_walk(
            fragment_tree, fragment_probs, heuristic, random.Random(1), max_expands=1
        )
        assert outcome.expands <= 1


class TestEstimate:
    def test_mean_and_stderr(self, fragment_tree, fragment_probs, heuristic):
        mean, stderr = estimate_expected_cost(
            fragment_tree, fragment_probs, heuristic, n_walks=50, seed=5
        )
        assert mean > 0
        assert stderr >= 0

    def test_single_walk_has_zero_stderr(self, fragment_tree, fragment_probs, heuristic):
        _, stderr = estimate_expected_cost(
            fragment_tree, fragment_probs, heuristic, n_walks=1
        )
        assert stderr == 0.0

    def test_n_walks_validation(self, fragment_tree, fragment_probs, heuristic):
        with pytest.raises(ValueError):
            estimate_expected_cost(fragment_tree, fragment_probs, heuristic, n_walks=0)

    def test_heuristic_beats_static_in_expectation(
        self, fragment_tree, fragment_probs, heuristic
    ):
        """Monte-Carlo agreement with the model-level dominance."""
        h_mean, _ = estimate_expected_cost(
            fragment_tree, fragment_probs, heuristic, n_walks=400, seed=11
        )
        s_mean, _ = estimate_expected_cost(
            fragment_tree,
            fragment_probs,
            StaticNavigation(fragment_tree),
            n_walks=400,
            seed=11,
        )
        assert h_mean < s_mean

    def test_monte_carlo_matches_analytic_evaluator(
        self, fragment_tree, fragment_probs
    ):
        """The sampled walk is an unbiased estimator of the §III recursion."""
        from repro.core.evaluation import expected_strategy_cost

        for strategy in (
            StaticNavigation(fragment_tree),
            HeuristicReducedOpt(fragment_tree, fragment_probs),
        ):
            analytic = expected_strategy_cost(fragment_tree, fragment_probs, strategy)
            mean, stderr = estimate_expected_cost(
                fragment_tree, fragment_probs, strategy, n_walks=500, seed=23
            )
            assert abs(mean - analytic) <= max(5 * stderr, 0.05 * analytic), (
                strategy.name,
                analytic,
                mean,
                stderr,
            )
