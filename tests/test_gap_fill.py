"""Gap-filling tests for less-traveled code paths."""

from __future__ import annotations

import pytest

from repro.corpus.generator import CorpusGenerator, TopicSpec
from repro.core.strategy import CutDecision, ExpansionStrategy
from repro.eutils.client import EntrezClient
from repro.eutils.errors import BadRequestError
from repro.hierarchy.generator import generate_hierarchy


class TestStrategyInterface:
    def test_abstract_strategy_cannot_instantiate(self):
        with pytest.raises(TypeError):
            ExpansionStrategy()  # type: ignore[abstract]

    def test_cut_decision_defaults(self):
        decision = CutDecision(cut=((1, 2),))
        assert decision.reduced_size == 0
        assert decision.expected_cost is None

    def test_cut_decision_is_frozen(self):
        decision = CutDecision(cut=())
        with pytest.raises(AttributeError):
            decision.cut = ((1, 2),)


class TestGeneratorFallbacks:
    def test_sample_covers_whole_pool_when_count_exceeds_it(self):
        hierarchy = generate_hierarchy(target_size=30, seed=2)
        generator = CorpusGenerator(hierarchy, seed=2)
        pool = list(range(1, 6))
        weights = [1.0] * 5
        sampled = generator._sample_weighted(pool, weights, count=50)
        assert sorted(sampled) == pool

    def test_focus_cluster_on_leaf_includes_parent_sometimes(self):
        hierarchy = generate_hierarchy(target_size=60, seed=3)
        generator = CorpusGenerator(hierarchy, seed=3)
        leaf = hierarchy.leaves()[0]
        clusters = [generator._focus_cluster(leaf, 4) for _ in range(30)]
        assert all(cluster[0] == leaf for cluster in clusters)
        assert any(hierarchy.parent(leaf) in cluster for cluster in clusters)

    def test_topic_with_leaf_anchor(self):
        hierarchy = generate_hierarchy(target_size=80, seed=4)
        generator = CorpusGenerator(hierarchy, seed=4)
        leaf = hierarchy.leaves()[0]
        citations = generator.generate_topic(
            TopicSpec(keyword="leafq", n_citations=5, anchors=((leaf, 1.0),))
        )
        assert len(citations) == 5
        assert all(citation.index_concepts for citation in citations)

    def test_anchor_weight_validation(self):
        hierarchy = generate_hierarchy(target_size=40, seed=5)
        generator = CorpusGenerator(hierarchy, seed=5)
        with pytest.raises(ValueError):
            generator.generate_topic(
                TopicSpec(keyword="x", n_citations=3, anchors=((1, -1.0),))
            )


class TestEutilsEdges:
    def test_esearch_all_on_empty_result(self, small_workload):
        assert small_workload.entrez.esearch_all("zzznomatch") == []

    def test_esearch_retmax_zero_returns_count_only(self, small_workload):
        result = small_workload.entrez.esearch("prothymosin", retmax=0)
        assert result.count == 313
        assert result.ids == ()

    def test_fresh_client_has_no_requests(self, small_workload):
        client = EntrezClient(small_workload.medline)
        assert client.requests_served == 0
        assert client.total_requests == 0

    def test_elink_negative_retmax_rejected(self, small_workload):
        pmid = small_workload.medline.pmids()[0]
        with pytest.raises(BadRequestError):
            small_workload.entrez.elink_related(pmid, retmax=-1)


class TestNavigationTreeEdges:
    def test_build_within_subtree_root(self, fragment_hierarchy):
        """Building a navigation tree rooted below the hierarchy root."""
        from repro.core.navigation_tree import NavigationTree

        bio = fragment_hierarchy.by_label(
            "Biological Phenomena, Cell Phenomena, and Immunity"
        )
        apoptosis = fragment_hierarchy.by_label("Apoptosis")
        tree = NavigationTree.build(
            fragment_hierarchy, {apoptosis: {1, 2}}, root=bio
        )
        assert tree.root == bio
        assert apoptosis in tree
        assert tree.parent(apoptosis) == bio  # intermediates spliced

    def test_empty_annotations_leave_only_root(self, fragment_hierarchy):
        from repro.core.navigation_tree import NavigationTree

        tree = NavigationTree.build(fragment_hierarchy, {})
        assert tree.size() == 1
        assert tree.all_results() == frozenset()
