"""Array-native NavigationTree vs the retained dict-based oracle.

The vectorized builder (`repro.core.navigation_tree.NavigationTree`)
must be *observationally identical* to the legacy per-node
implementation retained as `ReferenceNavigationTree`: same nodes in the
same preorder, same parent/children maps, same per-node result sets,
same subtree sizes — and, downstream, bit-identical CostArrays content
keys, probability masses, and Opt-EdgeCut cuts/costs.  A hypothesis
sweep over random hierarchies × sparse annotation maps enforces this,
plus directed edge cases (empty root, all-empty subtrees, single
citation, truthy-but-empty annotation iterables) and both corpus-store
backends for the ``from_store`` path.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.navigation_tree_reference import ReferenceNavigationTree
from repro.core.opt_edgecut import MAX_OPT_NODES, CutTree, OptEdgeCut
from repro.core.probabilities import ProbabilityModel
from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.hierarchy.generator import generate_hierarchy
from repro.substrate import (
    InMemoryStore,
    MmapStore,
    SubstrateBuilder,
    citation_chunks,
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def hierarchies(draw, min_nodes: int = 1, max_nodes: int = 30):
    """Random hierarchy encoded as a parent vector (ids are insertion order)."""
    n = draw(st.integers(min_nodes, max_nodes))
    h = ConceptHierarchy(root_label="root")
    for node in range(1, n):
        parent = draw(st.integers(0, node - 1))
        h.add_child(parent, "n%d" % node)
    return h


@st.composite
def annotation_maps(draw, hierarchy, max_citations: int = 40):
    """Sparse node → citation-set annotations (root included sometimes)."""
    annotations: Dict[int, Set[int]] = {}
    for node in range(len(hierarchy)):
        if draw(st.booleans()):
            annotations[node] = draw(
                st.sets(st.integers(1, max_citations), min_size=1, max_size=6)
            )
    return annotations


# ---------------------------------------------------------------------------
# Equivalence helpers
# ---------------------------------------------------------------------------
def assert_trees_identical(tree: NavigationTree, ref: ReferenceNavigationTree):
    """Every observable of the embedded tree matches the oracle's."""
    assert len(tree) == len(ref)
    assert tree.root == ref.root
    assert list(tree.iter_dfs()) == list(ref.iter_dfs())  # same preorder
    assert set(tree.nodes()) == set(ref.nodes())
    assert sorted(tree.edges()) == sorted(ref.edges())
    for node in ref.nodes():
        assert node in tree
        assert tree.parent(node) == ref.parent(node)
        assert tuple(tree.children(node)) == tuple(ref.children(node))
        assert tree.is_leaf(node) == ref.is_leaf(node)
        assert tree.results(node) == ref.results(node)
        assert tree.subtree_size(node) == ref.subtree_size(node)
        assert tree.subtree_nodes(node) == ref.subtree_nodes(node)
        assert tree.subtree_results(node) == ref.subtree_results(node)
        assert tree.tree_depth(node) == ref.tree_depth(node)
        assert list(tree.iter_dfs(node)) == list(ref.iter_dfs(node))
    assert tree.size() == ref.size()
    assert tree.max_width() == ref.max_width()
    assert tree.height() == ref.height()
    assert tree.citations_with_duplicates() == ref.citations_with_duplicates()
    assert tree.all_results() == ref.all_results()
    # Missing-node contract: same exception, same message.
    missing = max(ref.nodes()) + 1000
    with pytest.raises(KeyError) as new_err:
        tree.parent(missing)
    with pytest.raises(KeyError) as ref_err:
        ref.parent(missing)
    assert str(new_err.value) == str(ref_err.value)


def assert_costs_identical(tree: NavigationTree, ref: ReferenceNavigationTree):
    """Downstream cost model + Opt-EdgeCut are bit-identical."""
    probs_new = ProbabilityModel(tree, lambda n: 500)
    probs_ref = ProbabilityModel(ref, lambda n: 500)
    # CostArrays ingests the array tree through the buffer seam and the
    # oracle through the per-node legacy path; equal content keys mean
    # the two ingestion paths hashed identical byte streams.
    assert probs_new.arrays.content_key == probs_ref.arrays.content_key
    assert np.array_equal(
        probs_new.arrays.preorder_ids, probs_ref.arrays.preorder_ids
    )
    assert np.array_equal(
        probs_new.arrays.explore_mass, probs_ref.arrays.explore_mass
    )
    assert probs_new.arrays.normalizer == probs_ref.arrays.normalizer
    for node in ref.nodes():
        assert probs_new.explore_mass(node) == probs_ref.explore_mass(node)
    if len(ref) > MAX_OPT_NODES:
        return
    component = frozenset(ref.nodes())
    cut_new = CutTree.from_component(tree, probs_new, component, tree.root)
    cut_ref = CutTree.from_component(ref, probs_ref, component, ref.root)
    best_new = OptEdgeCut(cut_new, probs_new, CostParams()).solve()
    best_ref = OptEdgeCut(cut_ref, probs_ref, CostParams()).solve()
    assert best_new.cut == best_ref.cut
    assert best_new.expected_cost == best_ref.expected_cost
    assert best_new.expansion_term == best_ref.expansion_term


def build_both(hierarchy, annotations):
    tree = NavigationTree.build(hierarchy, annotations)
    ref = ReferenceNavigationTree.build(hierarchy, annotations)
    return tree, ref


# ---------------------------------------------------------------------------
# Randomized sweep
# ---------------------------------------------------------------------------
class TestRandomizedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_hierarchy_and_annotations(self, data):
        hierarchy = data.draw(hierarchies())
        annotations = data.draw(annotation_maps(hierarchy))
        tree, ref = build_both(hierarchy, annotations)
        assert_trees_identical(tree, ref)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_downstream_costs_bit_identical(self, data):
        hierarchy = data.draw(hierarchies(max_nodes=18))
        annotations = data.draw(annotation_maps(hierarchy))
        tree, ref = build_both(hierarchy, annotations)
        assert_costs_identical(tree, ref)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_subtree_roots(self, data):
        """Building from a non-root hierarchy node embeds the same subtree."""
        hierarchy = data.draw(hierarchies(min_nodes=3))
        annotations = data.draw(annotation_maps(hierarchy))
        root = data.draw(st.integers(0, len(hierarchy) - 1))
        tree = NavigationTree.build(hierarchy, annotations, root=root)
        ref = ReferenceNavigationTree.build(hierarchy, annotations, root=root)
        assert_trees_identical(tree, ref)


# ---------------------------------------------------------------------------
# Directed edge cases
# ---------------------------------------------------------------------------
class TestEdgeCases:
    def _chain(self, n=5):
        h = ConceptHierarchy(root_label="root")
        for i in range(1, n):
            h.add_child(i - 1, "n%d" % i)
        return h

    def test_empty_root_no_annotations(self):
        """No annotations at all: the tree is exactly the (empty) root."""
        tree, ref = build_both(self._chain(), {})
        assert_trees_identical(tree, ref)
        assert len(tree) == 1
        assert tree.results(tree.root) == frozenset()
        assert_costs_identical(tree, ref)

    def test_all_empty_subtree_spliced_out(self):
        """A fully empty branch vanishes; its sibling branch survives."""
        h = ConceptHierarchy(root_label="root")
        left = h.add_child(0, "left")
        l_kid = h.add_child(left, "left-kid")
        right = h.add_child(0, "right")
        h.add_child(right, "right-kid")
        tree, ref = build_both(h, {l_kid: {7, 8}})
        assert_trees_identical(tree, ref)
        assert set(tree.nodes()) == {0, l_kid}
        assert_costs_identical(tree, ref)

    def test_single_citation(self):
        h = self._chain(4)
        tree, ref = build_both(h, {3: {42}})
        assert_trees_identical(tree, ref)
        assert tree.all_results() == frozenset({42})
        assert tree.citations_with_duplicates() == 1
        assert_costs_identical(tree, ref)

    def test_deep_kept_chain(self):
        """Every node kept on a deep chain (recursion-free embedding)."""
        n = 300
        h = self._chain(n)
        annotations = {i: {i} for i in range(1, n)}
        tree, ref = build_both(h, annotations)
        assert_trees_identical(tree, ref)
        assert tree.height() == n - 1

    def test_empty_iterable_annotation_dropped(self):
        """Falsy annotation values (empty list/set) splice the node out."""
        h = self._chain(4)
        annotations = {1: [], 2: set(), 3: [9]}
        tree, ref = build_both(h, dict(annotations))
        assert_trees_identical(tree, ref)
        assert set(tree.nodes()) == {0, 3}

    def test_truthy_empty_generator_keeps_node(self):
        """A truthy-but-empty iterable keeps the node with no results.

        The legacy builder tested emptiness by truthiness (``if ids``),
        so a generator that yields nothing still kept its node; the
        array builder preserves that wart bit for bit.
        """

        def empty_gen():
            return iter(())

        tree = NavigationTree.build(self._chain(3), {1: empty_gen(), 2: [5]})
        ref = ReferenceNavigationTree.build(
            self._chain(3), {1: empty_gen(), 2: [5]}
        )
        assert_trees_identical(tree, ref)
        assert 1 in tree
        assert tree.results(1) == frozenset()

    def test_out_of_range_concepts_ignored(self):
        """Annotation keys outside the hierarchy are silently dropped."""
        h = self._chain(3)
        annotations = {1: {4}, 99: {5}, -7: {6}, "x": {7}}
        tree, ref = build_both(h, dict(annotations))
        assert_trees_identical(tree, ref)
        assert set(tree.nodes()) == {0, 1}

    def test_duplicate_citations_within_node(self):
        """Duplicate ids inside one annotation collapse to a set once."""
        h = self._chain(3)
        tree, ref = build_both(h, {1: [5, 5, 9, 5], 2: (9,)})
        assert_trees_identical(tree, ref)
        assert tree.results(1) == frozenset({5, 9})
        assert tree.citations_with_duplicates() == 3


# ---------------------------------------------------------------------------
# from_store parity on both backends
# ---------------------------------------------------------------------------
N_CITATIONS = 160


@pytest.fixture(scope="module")
def corpus():
    hierarchy = generate_hierarchy(target_size=120, seed=23)
    rng = np.random.default_rng(29)
    citations = []
    for i in range(N_CITATIONS):
        concepts = tuple(
            sorted(
                set(rng.integers(1, len(hierarchy), size=rng.integers(1, 9)).tolist())
            )
        )
        citations.append(
            Citation(
                pmid=40_000_000 + i,
                title="Nav-tree equivalence citation %d" % i,
                year=int(1995 + (i % 13)),
                index_concepts=concepts,
            )
        )
    background = {c: 100 + 2 * c for c in range(len(hierarchy))}
    return hierarchy, citations, background


@pytest.fixture(scope="module")
def memory_store(corpus):
    hierarchy, citations, background = corpus
    medline = MedlineDatabase(background_counts=background)
    medline.add_all(citations)
    return InMemoryStore(medline, hierarchy=hierarchy)


@pytest.fixture(scope="module")
def mmap_store(corpus, tmp_path_factory):
    hierarchy, citations, background = corpus
    out = tmp_path_factory.mktemp("navtree-equivalence-substrate")
    builder = SubstrateBuilder(str(out), num_concepts=len(hierarchy))
    builder.build(
        citation_chunks(iter(citations), chunk_size=64),
        hierarchy=hierarchy,
        background=background,
    )
    return MmapStore(str(out))


class TestFromStoreParity:
    def _result_sets(self, corpus):
        hierarchy, citations, _ = corpus
        rng = np.random.default_rng(31)
        all_pmids = [c.pmid for c in citations]
        yield all_pmids
        yield all_pmids[:1]
        yield []
        for size in (5, 25, 90):
            yield sorted(rng.choice(all_pmids, size=size, replace=False).tolist())

    @pytest.mark.parametrize("backend", ["memory", "mmap"])
    def test_from_store_matches_reference(
        self, corpus, memory_store, mmap_store, backend
    ):
        hierarchy = corpus[0]
        store = memory_store if backend == "memory" else mmap_store
        for pmids in self._result_sets(corpus):
            tree = NavigationTree.from_store(hierarchy, store, pmids)
            ref = ReferenceNavigationTree.from_store(hierarchy, store, pmids)
            assert_trees_identical(tree, ref)

    def test_backends_agree_with_each_other(self, corpus, memory_store, mmap_store):
        hierarchy = corpus[0]
        for pmids in self._result_sets(corpus):
            mem_tree = NavigationTree.from_store(hierarchy, memory_store, pmids)
            mm_tree = NavigationTree.from_store(hierarchy, mmap_store, pmids)
            assert list(mem_tree.iter_dfs()) == list(mm_tree.iter_dfs())
            for node in mem_tree.nodes():
                assert mem_tree.results(node) == mm_tree.results(node)

    def test_from_store_costs_match_reference(self, corpus, mmap_store):
        hierarchy = corpus[0]
        pmids = [c.pmid for c in corpus[1]][:8]
        tree = NavigationTree.from_store(hierarchy, mmap_store, pmids)
        ref = ReferenceNavigationTree.from_store(hierarchy, mmap_store, pmids)
        probs_new = ProbabilityModel(tree, mmap_store.medline_count)
        probs_ref = ProbabilityModel(ref, mmap_store.medline_count)
        assert probs_new.arrays.content_key == probs_ref.arrays.content_key
        assert probs_new.arrays.normalizer == probs_ref.arrays.normalizer
