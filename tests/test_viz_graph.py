"""Unit tests for the networkx / DOT graph exports."""

from __future__ import annotations

import networkx as nx

from repro.core.active_tree import ActiveTree
from repro.core.static_nav import StaticNavigation
from repro.viz.graph import active_tree_to_networkx, navigation_tree_to_networkx, to_dot


class TestNavigationTreeExport:
    def test_structure_matches(self, fragment_tree):
        graph = navigation_tree_to_networkx(fragment_tree)
        assert graph.number_of_nodes() == fragment_tree.size()
        assert graph.number_of_edges() == fragment_tree.size() - 1
        assert nx.is_arborescence(graph)

    def test_attributes(self, fragment_tree, fragment_hierarchy):
        graph = navigation_tree_to_networkx(fragment_tree)
        apoptosis = fragment_hierarchy.by_label("Apoptosis")
        data = graph.nodes[apoptosis]
        assert data["label"] == "Apoptosis"
        assert data["results"] == 35
        assert data["subtree_results"] == len(fragment_tree.subtree_results(apoptosis))
        assert data["depth"] == fragment_tree.tree_depth(apoptosis)

    def test_root_reaches_everything(self, fragment_tree):
        graph = navigation_tree_to_networkx(fragment_tree)
        reachable = nx.descendants(graph, fragment_tree.root) | {fragment_tree.root}
        assert reachable == set(graph.nodes)


class TestActiveTreeExport:
    def test_visibility_attributes(self, fragment_tree):
        active = ActiveTree(fragment_tree)
        strategy = StaticNavigation(fragment_tree)
        active.expand(fragment_tree.root, strategy.choose_cut(active, fragment_tree.root).cut)
        graph = active_tree_to_networkx(active)
        visible = {n for n, d in graph.nodes(data=True) if d["visible"]}
        assert visible == set(active.visible_nodes())
        for node in visible:
            assert graph.nodes[node]["component_count"] == active.component_count(node)

    def test_hidden_nodes_lack_component_count(self, fragment_tree):
        active = ActiveTree(fragment_tree)
        graph = active_tree_to_networkx(active)
        hidden = [n for n, d in graph.nodes(data=True) if not d["visible"]]
        assert hidden
        assert all("component_count" not in graph.nodes[n] for n in hidden)


class TestDot:
    def test_dot_structure(self, fragment_tree):
        graph = navigation_tree_to_networkx(fragment_tree)
        dot = to_dot(graph)
        assert dot.startswith("digraph bionav {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == graph.number_of_edges()

    def test_highlight_and_hidden_styles(self, fragment_tree, fragment_hierarchy):
        active = ActiveTree(fragment_tree)
        graph = active_tree_to_networkx(active)
        apoptosis = fragment_hierarchy.by_label("Apoptosis")
        dot = to_dot(graph, highlight=[apoptosis])
        assert "dashed" in dot  # hidden nodes exist initially
        assert "filled" in dot

    def test_long_labels_truncated(self, fragment_tree):
        graph = navigation_tree_to_networkx(fragment_tree)
        dot = to_dot(graph, max_label_length=10)
        assert "…" in dot
