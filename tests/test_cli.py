"""Unit tests for the bionav command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

ARGS = ["--hierarchy-size", "600", "--seed", "3"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_search(self):
        args = build_parser().parse_args(["search", "prothymosin", "--strategy", "static"])
        assert args.command == "search"
        assert args.keyword == "prothymosin"
        assert args.strategy == "static"

    def test_rejects_bad_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "x", "--strategy", "nope"])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(ARGS + ["demo"]) == 0
        out = capsys.readouterr().out
        assert "prothymosin" in out
        assert "EXPAND" in out

    def test_search_heuristic(self, capsys):
        assert main(ARGS + ["search", "prothymosin"]) == 0
        out = capsys.readouterr().out
        assert "Reached target: True" in out

    def test_search_static(self, capsys):
        assert main(ARGS + ["search", "prothymosin", "--strategy", "static"]) == 0
        out = capsys.readouterr().out
        assert "Strategy: static" in out

    def test_search_unknown_keyword_fails(self, capsys):
        assert main(ARGS + ["search", "nope"]) == 2

    def test_workload_table(self, capsys):
        assert main(ARGS + ["workload"]) == 0
        out = capsys.readouterr().out
        assert "prothymosin" in out
        assert "follistatin" in out

    def test_compare_reports_improvement(self, capsys):
        assert main(ARGS + ["compare"]) == 0
        out = capsys.readouterr().out
        assert "average" in out
        assert "%" in out

    def test_html_export(self, capsys, tmp_path):
        output = str(tmp_path / "snapshot.html")
        assert main(ARGS + ["html", "prothymosin", output]) == 0
        with open(output) as handle:
            page = handle.read()
        assert page.startswith("<!DOCTYPE html>")
        assert "prothymosin" in page
        assert "bionav" in page

    def test_html_export_count_ranking(self, tmp_path):
        output = str(tmp_path / "snapshot.html")
        assert main(ARGS + ["html", "prothymosin", output, "--rank", "count", "--expands", "1"]) == 0

    def test_html_unknown_keyword(self, tmp_path):
        output = str(tmp_path / "snapshot.html")
        assert main(ARGS + ["html", "nope", output]) == 2

    def test_report_command(self, tmp_path):
        output = str(tmp_path / "report.md")
        assert main(ARGS + ["report", output]) == 0
        with open(output) as handle:
            text = handle.read()
        assert "## Figure 8" in text
        assert "prothymosin" in text
