"""Unit tests for repro.corpus.medline."""

from __future__ import annotations

import pytest

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase


def citation(pmid: int, concepts=(1, 2)) -> Citation:
    return Citation(
        pmid=pmid,
        title="title %d" % pmid,
        mesh_annotations=tuple(concepts),
        index_concepts=tuple(concepts),
    )


class TestStorage:
    def test_add_and_get(self):
        db = MedlineDatabase()
        db.add(citation(5))
        assert db.get(5).pmid == 5
        assert 5 in db
        assert len(db) == 1

    def test_duplicate_pmid_rejected(self):
        db = MedlineDatabase()
        db.add(citation(5))
        with pytest.raises(ValueError):
            db.add(citation(5))

    def test_get_unknown_raises(self):
        db = MedlineDatabase()
        with pytest.raises(KeyError):
            db.get(123)

    def test_get_many_preserves_order(self):
        db = MedlineDatabase()
        db.add_all([citation(1), citation(2), citation(3)])
        assert [c.pmid for c in db.get_many([3, 1])] == [3, 1]

    def test_pmids_sorted(self):
        db = MedlineDatabase()
        db.add_all([citation(9), citation(2), citation(5)])
        assert db.pmids() == [2, 5, 9]

    def test_iter_citations(self):
        db = MedlineDatabase()
        db.add_all([citation(1), citation(2)])
        assert {c.pmid for c in db.iter_citations()} == {1, 2}

    def test_concepts_of(self):
        db = MedlineDatabase()
        db.add(citation(1, concepts=(4, 7)))
        assert db.concepts_of(1) == (4, 7)


class TestConceptCounts:
    def test_corpus_count_tracks_distinct_citations(self):
        db = MedlineDatabase()
        db.add(citation(1, concepts=(4, 4, 7)))
        db.add(citation(2, concepts=(4,)))
        assert db.corpus_count(4) == 2
        assert db.corpus_count(7) == 1
        assert db.corpus_count(999) == 0

    def test_medline_count_includes_background(self):
        db = MedlineDatabase(background_counts={4: 100})
        db.add(citation(1, concepts=(4,)))
        assert db.medline_count(4) == 101
        assert db.medline_count(5) == 0

    def test_set_background_count(self):
        db = MedlineDatabase()
        db.set_background_count(7, 42)
        assert db.medline_count(7) == 42

    def test_negative_background_rejected(self):
        db = MedlineDatabase()
        with pytest.raises(ValueError):
            db.set_background_count(7, -1)
