"""Unit tests for the paged-static ("more button") baseline."""

from __future__ import annotations

import pytest

from repro.core.active_tree import ActiveTree
from repro.core.paged_static import PagedStaticNavigation
from repro.core.session import NavigationSession
from repro.core.simulator import navigate_to_target


class TestPaging:
    def test_first_page_reveals_top_children_by_count(self, fragment_tree):
        strategy = PagedStaticNavigation(fragment_tree, page_size=2)
        active = ActiveTree(fragment_tree)
        decision = strategy.choose_cut(active, fragment_tree.root)
        assert len(decision.cut) == 2
        revealed = [child for _, child in decision.cut]
        counts = [len(fragment_tree.subtree_results(c)) for c in revealed]
        all_counts = sorted(
            (len(fragment_tree.subtree_results(c)) for c in fragment_tree.children(fragment_tree.root)),
            reverse=True,
        )
        assert counts == all_counts[:2]

    def test_more_button_pages_through_children(self, fragment_tree):
        root = fragment_tree.root
        n_children = len(fragment_tree.children(root))
        strategy = PagedStaticNavigation(fragment_tree, page_size=1)
        active = ActiveTree(fragment_tree)
        pages = 0
        while active.is_expandable(root):
            decision = strategy.choose_cut(active, root)
            if not decision.cut:
                break
            active.expand(root, decision.cut)
            pages += 1
            if pages > n_children + 1:
                pytest.fail("paging did not terminate")
        # Every child revealed, one page each.
        assert pages == n_children
        for child in fragment_tree.children(root):
            assert active.is_visible(child)

    def test_pages_never_repeat_children(self, fragment_tree):
        strategy = PagedStaticNavigation(fragment_tree, page_size=2)
        active = ActiveTree(fragment_tree)
        seen = set()
        while active.is_expandable(fragment_tree.root):
            decision = strategy.choose_cut(active, fragment_tree.root)
            if not decision.cut:
                break
            new = {child for _, child in decision.cut}
            assert not new & seen
            seen |= new
            active.expand(fragment_tree.root, decision.cut)

    def test_page_size_validation(self, fragment_tree):
        with pytest.raises(ValueError):
            PagedStaticNavigation(fragment_tree, page_size=0)

    def test_large_page_equals_plain_static(self, fragment_tree):
        strategy = PagedStaticNavigation(fragment_tree, page_size=1000)
        active = ActiveTree(fragment_tree)
        decision = strategy.choose_cut(active, fragment_tree.root)
        assert len(decision.cut) == len(fragment_tree.children(fragment_tree.root))


class TestNavigation:
    def test_reaches_target(self, fragment_tree, fragment_hierarchy):
        target = fragment_hierarchy.by_label("Apoptosis")
        strategy = PagedStaticNavigation(fragment_tree, page_size=2)
        outcome = navigate_to_target(fragment_tree, strategy, target)
        assert outcome.reached

    def test_footnote2_cost_close_to_static(self, fragment_tree, fragment_hierarchy):
        """Paper footnote 2: paging does not change cost considerably —
        reveals go down but 'more' clicks go up."""
        from repro.core.static_nav import StaticNavigation

        target = fragment_hierarchy.by_label("Apoptosis")
        static = navigate_to_target(
            fragment_tree, StaticNavigation(fragment_tree), target, show_results=False
        )
        paged = navigate_to_target(
            fragment_tree,
            PagedStaticNavigation(fragment_tree, page_size=3),
            target,
            show_results=False,
        )
        assert paged.reached
        assert paged.expand_actions >= static.expand_actions
        # Same ballpark overall (within 2x either way on the fragment).
        assert paged.navigation_cost <= 2 * static.navigation_cost

    def test_works_through_session(self, fragment_tree):
        session = NavigationSession(
            fragment_tree, PagedStaticNavigation(fragment_tree, page_size=2)
        )
        outcome = session.expand(fragment_tree.root)
        assert len(outcome.revealed) == 2
