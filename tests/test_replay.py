"""Unit tests for session recording and replay."""

from __future__ import annotations

import pytest

from repro.core.heuristic import HeuristicReducedOpt
from repro.core.replay import SessionLog, record_session, replay_session
from repro.core.session import NavigationSession


@pytest.fixture()
def recorded(fragment_tree, fragment_probs):
    """A session with a few expands plus its extracted log."""
    session = NavigationSession(
        fragment_tree, HeuristicReducedOpt(fragment_tree, fragment_probs)
    )
    session.expand(fragment_tree.root)
    expandable = [
        n for n in session.active.component_roots() if n != fragment_tree.root
    ]
    if expandable:
        session.expand(expandable[0])
    return session, record_session(session)


class TestRecording:
    def test_log_contains_one_entry_per_expand(self, recorded):
        session, log = recorded
        expands = [a for a in log.actions if a[0] == "expand"]
        assert len(expands) == session.ledger.expand_actions

    def test_manual_log_recording(self):
        log = SessionLog()
        log.record_expand(0, [(0, 1)])
        log.record_show(1)
        log.record_ignore(2)
        log.record_backtrack()
        assert [a[0] for a in log.actions] == ["expand", "show", "ignore", "backtrack"]


class TestSerialization:
    def test_json_round_trip(self, recorded):
        _, log = recorded
        restored = SessionLog.from_json(log.to_json())
        assert restored.actions == log.actions

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            SessionLog.from_json('{"version": 99, "actions": []}')

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            SessionLog.from_json('{"version": 1, "actions": [["teleport", 3]]}')


class TestReplay:
    def test_replay_reconstructs_visible_state(self, recorded, fragment_tree):
        session, log = recorded
        replayed = replay_session(fragment_tree, log)
        assert set(replayed.active.visible_nodes()) == set(
            session.active.visible_nodes()
        )
        for node in replayed.active.component_roots():
            assert replayed.active.component(node) == session.active.component(node)

    def test_replay_reconstructs_cost_ledger(self, recorded, fragment_tree):
        session, log = recorded
        replayed = replay_session(fragment_tree, log)
        assert replayed.ledger.expand_actions == session.ledger.expand_actions
        assert replayed.ledger.concepts_revealed == session.ledger.concepts_revealed

    def test_replay_with_show_and_backtrack(self, fragment_tree, fragment_probs):
        session = NavigationSession(
            fragment_tree, HeuristicReducedOpt(fragment_tree, fragment_probs)
        )
        outcome = session.expand(fragment_tree.root)
        log = SessionLog()
        log.record_expand(fragment_tree.root, outcome.decision.cut)
        log.record_show(outcome.revealed[0])
        log.record_backtrack()
        replayed = replay_session(fragment_tree, log)
        assert replayed.ledger.citations_displayed > 0
        assert replayed.active.visible_nodes() == [fragment_tree.root]

    def test_replay_against_wrong_tree_fails(self, recorded, fragment_tree):
        from repro.core.navigation_tree import NavigationTree
        from repro.hierarchy.concept import ConceptHierarchy

        _, log = recorded
        h = ConceptHierarchy()
        h.add_child(0, "only")
        other = NavigationTree.build(h, {1: {1}})
        with pytest.raises((ValueError, KeyError)):
            replay_session(other, log)

    def test_empty_log_replays_to_initial_state(self, fragment_tree):
        replayed = replay_session(fragment_tree, SessionLog())
        assert replayed.active.visible_nodes() == [fragment_tree.root]
        assert replayed.total_cost == 0
