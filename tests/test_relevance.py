"""Unit tests for relevance ranking of revealed concepts."""

from __future__ import annotations

import pytest

from repro.core.active_tree import ActiveTree
from repro.core.relevance import rank_siblings, ranked_visualization, relevance_of
from repro.core.static_nav import StaticNavigation


@pytest.fixture()
def expanded_active(fragment_tree):
    active = ActiveTree(fragment_tree)
    strategy = StaticNavigation(fragment_tree)
    active.expand(
        fragment_tree.root, strategy.best_cut(active.component(fragment_tree.root), fragment_tree.root).cut
    )
    return active


class TestRelevance:
    def test_relevance_of_singleton_is_node_mass(self, expanded_active, fragment_probs, fragment_tree):
        # Fully expand one branch to get singleton components.
        for node in list(expanded_active.component_roots()):
            if node == fragment_tree.root:
                continue
        # Any visible node's relevance equals its component mass.
        for node in expanded_active.visible_nodes():
            expected = sum(
                fragment_probs.explore_mass(m)
                for m in expanded_active.component(node)
            )
            assert relevance_of(expanded_active, fragment_probs, node) == pytest.approx(expected)

    def test_relevance_shrinks_after_expansion(self, fragment_tree, fragment_probs, fragment_hierarchy):
        active = ActiveTree(fragment_tree)
        root_relevance = relevance_of(active, fragment_probs, fragment_tree.root)
        cell_death = fragment_hierarchy.by_label("Cell Death")
        active.expand(fragment_tree.root, [(fragment_tree.parent(cell_death), cell_death)])
        assert relevance_of(active, fragment_probs, fragment_tree.root) < root_relevance


class TestRankSiblings:
    def test_preserves_tree_shape(self, expanded_active, fragment_probs):
        rows = expanded_active.visualize()
        ranked = ranked_visualization(expanded_active, fragment_probs)
        assert {r.node for r in ranked} == {r.node for r in rows}
        # Parents still precede their children.
        position = {r.node: i for i, r in enumerate(ranked)}
        for row in ranked:
            if row.parent != -1:
                assert position[row.parent] < position[row.node]

    def test_relevance_order_descends_within_siblings(self, expanded_active, fragment_probs):
        ranked = ranked_visualization(expanded_active, fragment_probs, by="relevance")
        by_parent = {}
        for row in ranked:
            by_parent.setdefault(row.parent, []).append(row)
        for siblings in by_parent.values():
            scores = [
                relevance_of(expanded_active, fragment_probs, r.node) for r in siblings
            ]
            assert scores == sorted(scores, reverse=True)

    def test_count_order_matches_gopubmed_style(self, expanded_active, fragment_probs):
        ranked = ranked_visualization(expanded_active, fragment_probs, by="count")
        by_parent = {}
        for row in ranked:
            by_parent.setdefault(row.parent, []).append(row)
        for siblings in by_parent.values():
            counts = [r.count for r in siblings]
            assert counts == sorted(counts, reverse=True)

    def test_unknown_policy_rejected(self, expanded_active, fragment_probs):
        with pytest.raises(ValueError):
            ranked_visualization(expanded_active, fragment_probs, by="magic")

    def test_rank_siblings_handles_empty(self):
        assert rank_siblings([], key=lambda r: 0.0) == []
