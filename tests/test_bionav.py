"""Unit tests for the BioNav facade."""

from __future__ import annotations

import pytest

from repro.bionav import BioNav
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.static_nav import StaticNavigation
from repro.pipeline.pipeline import PipelineStrategy


@pytest.fixture(scope="module")
def bionav(request):
    workload = request.getfixturevalue("small_workload")
    return BioNav(workload.database, workload.entrez)


class TestSearch:
    def test_search_returns_full_query(self, bionav):
        query = bionav.search("prothymosin")
        assert query.result_count == 313
        assert query.tree.size() > 50
        assert query.session.tree is query.tree

    def test_default_strategy_is_heuristic(self, bionav):
        query = bionav.search("prothymosin")
        strategy = query.session.strategy
        assert isinstance(strategy, PipelineStrategy)
        assert isinstance(strategy.inner, HeuristicReducedOpt)
        assert strategy.name == strategy.inner.name

    def test_static_strategy_selectable(self, bionav):
        query = bionav.search("prothymosin", strategy="static")
        assert isinstance(query.session.strategy, PipelineStrategy)
        assert isinstance(query.session.strategy.inner, StaticNavigation)

    def test_unknown_strategy_rejected(self, bionav):
        with pytest.raises(ValueError):
            bionav.search("prothymosin", strategy="magic")

    def test_no_results_query_yields_root_only_tree(self, bionav):
        query = bionav.search("zzzzunmatched")
        assert query.result_count == 0
        assert query.tree.size() == 1  # just the root

    def test_session_expand_works_end_to_end(self, bionav):
        query = bionav.search("follistatin")
        outcome = query.session.expand(query.tree.root)
        assert outcome.revealed
        assert query.session.navigation_cost >= 2

    def test_summaries_via_esummary(self, bionav):
        query = bionav.search("varenicline")
        pmids = query.session.show_results(query.tree.root)
        summaries = bionav.summaries(pmids[:5])
        assert len(summaries) == 5
        assert all("varenicline" in s.title for s in summaries)

    def test_summaries_empty_list(self, bionav):
        assert bionav.summaries([]) == []


class TestBuild:
    def test_build_from_hierarchy_and_medline(self, small_workload):
        system = BioNav.build(small_workload.hierarchy, small_workload.medline)
        query = system.search("LbetaT2")
        assert query.result_count == 152
