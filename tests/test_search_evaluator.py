"""Unit tests for the fielded query evaluator."""

from __future__ import annotations

import pytest

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.concept import ConceptHierarchy
from repro.search.evaluator import FieldedSearchEngine
from repro.search.query_language import QuerySyntaxError


@pytest.fixture(scope="module")
def hierarchy() -> ConceptHierarchy:
    h = ConceptHierarchy()
    cell = h.add_child(0, "Cell Physiology")       # 1
    h.add_child(cell, "Cell Death")                # 2
    h.add_child(2, "Apoptosis")                    # 3
    h.add_child(0, "Genetic Processes")            # 4
    return h


@pytest.fixture(scope="module")
def engine(hierarchy) -> FieldedSearchEngine:
    db = MedlineDatabase()
    db.add_all(
        [
            Citation(
                pmid=1,
                title="prothymosin alpha in cell proliferation",
                abstract="a study of apoptosis signaling",
                mesh_annotations=(3,),
                index_concepts=(3,),
            ),
            Citation(
                pmid=2,
                title="apoptosis pathways reviewed",
                abstract="cell proliferation and death",
                mesh_annotations=(2,),
                index_concepts=(2,),
            ),
            Citation(
                pmid=3,
                title="unrelated kinase work",
                abstract="nothing to see",
                mesh_annotations=(4,),
                index_concepts=(4,),
            ),
        ]
    )
    return FieldedSearchEngine(db, hierarchy)


class TestFieldScoping:
    def test_title_field(self, engine):
        assert engine.search("apoptosis[ti]") == {2}

    def test_abstract_field(self, engine):
        assert engine.search("apoptosis[ab]") == {1}

    def test_all_field_spans_both(self, engine):
        assert engine.search("apoptosis") == {1, 2}
        assert engine.search("apoptosis[all]") == {1, 2}


class TestMeshField:
    def test_exact_heading(self, engine):
        assert engine.search("Apoptosis[mh]") == {1}

    def test_subtree_explosion(self, engine):
        # Cell Death [mh] matches Cell Death AND its descendant Apoptosis.
        assert engine.search('"Cell Death"[mh]') == {1, 2}

    def test_case_insensitive_heading(self, engine):
        assert engine.search("apoptosis[mh]") == {1}

    def test_unknown_heading_matches_nothing(self, engine):
        assert engine.search("Nonexistent[mh]") == set()

    def test_noexp_matches_only_the_concept(self, engine):
        # [mh:noexp] skips the explosion: Cell Death alone matches only
        # the citation annotated with Cell Death itself.
        assert engine.search('"Cell Death"[mh:noexp]') == {2}

    def test_noexp_equals_mh_on_leaves(self, engine):
        assert engine.search("Apoptosis[mh:noexp]") == engine.search("Apoptosis[mh]")


class TestPhrases:
    def test_phrase_requires_adjacency(self, engine):
        assert engine.search('"cell proliferation"') == {1, 2}
        assert engine.search('"proliferation cell"') == set()

    def test_phrase_field_combination(self, engine):
        assert engine.search('"cell proliferation"[ti]') == {1}
        assert engine.search('"cell proliferation"[ab]') == {2}


class TestBooleans:
    def test_and(self, engine):
        assert engine.search("prothymosin AND apoptosis") == {1}

    def test_or(self, engine):
        assert engine.search("prothymosin OR kinase") == {1, 3}

    def test_not_complements_universe(self, engine):
        assert engine.search("NOT apoptosis") == {3}

    def test_combined(self, engine):
        result = engine.search('("Cell Death"[mh] OR kinase) NOT reviewed[ti]')
        assert result == {1, 3}

    def test_syntax_error_propagates(self, engine):
        with pytest.raises(QuerySyntaxError):
            engine.search("a AND")


class TestWorkloadIntegration:
    def test_mesh_search_on_workload(self, small_workload):
        engine = FieldedSearchEngine(small_workload.medline, small_workload.hierarchy)
        # The grafted Table I target label is queryable via [mh].
        matches = engine.search('"Mice, Transgenic"[mh]')
        target = small_workload.built_query("LbetaT2").target_node
        expected = {
            c.pmid
            for c in small_workload.medline.iter_citations()
            if any(
                small_workload.hierarchy.is_ancestor(target, concept)
                for concept in c.concepts
            )
        }
        assert matches == expected
        assert matches  # the target has citations by construction

    def test_keyword_matches_plain_engine(self, small_workload):
        engine = FieldedSearchEngine(small_workload.medline, small_workload.hierarchy)
        fielded = engine.search("prothymosin")
        plain = set(small_workload.entrez.esearch_all("prothymosin"))
        assert fielded == plain
