"""Golden snapshot tests for the ASCII renderers.

The fragment fixture is fully deterministic, so the Fig. 1/2-style
renderings have exact expected outputs.  Pinning them catches accidental
changes to counts, embedding order, truncation, or indentation that
value-level assertions could miss.
"""

from __future__ import annotations

from repro.core.active_tree import ActiveTree
from repro.viz.render import render_active_tree, render_navigation_tree

# The fragment annotations attach citations only to specific concepts, so
# the maximum embedding splices out the empty category nodes ("Amino
# Acids, Peptides, and Proteins", "Proteins", ...) and their annotated
# descendants surface directly under the root.
FIG1_SNAPSHOT = """MeSH (105)
  Chromatin (20)
    Nucleosomes (4)
    Heterochromatin (2)
    1 more nodes
  Histones (20)
  6 more nodes"""


class TestStaticSnapshot:
    def test_fig1_style_render_is_stable(self, fragment_tree):
        text = render_navigation_tree(fragment_tree, max_children=2, max_depth=2)
        assert text == FIG1_SNAPSHOT

    def test_snapshot_counts_cross_check(self, fragment_tree, fragment_hierarchy):
        assert len(fragment_tree.all_results()) == 105
        chromatin = fragment_hierarchy.by_label("Chromatin")
        assert len(fragment_tree.subtree_results(chromatin)) == 20


class TestActiveSnapshot:
    def test_initial_view(self, fragment_tree):
        active = ActiveTree(fragment_tree)
        assert render_active_tree(active) == "MeSH (105) >>>"

    def test_after_one_manual_cut(self, fragment_tree, fragment_hierarchy):
        active = ActiveTree(fragment_tree)
        cell_death = fragment_hierarchy.by_label("Cell Death")
        histones = fragment_hierarchy.by_label("Histones")
        active.expand(
            fragment_tree.root,
            [
                (fragment_tree.parent(cell_death), cell_death),
                (fragment_tree.parent(histones), histones),
            ],
        )
        assert render_active_tree(active) == (
            "MeSH (95) >>>\n"
            "  Histones (20)\n"
            "  Cell Death (42) >>>"
        )

    def test_upper_count_shrinks_like_fig2(self, fragment_tree, fragment_hierarchy):
        # 105 distinct citations initially; after revealing Histones (20)
        # and Cell Death (42) the upper component re-counts to 95 — the
        # overlap (Histones shares 70-79 with Chromatin, etc.) stays
        # visible in the upper component, exactly the Fig. 2b→2c effect.
        active = ActiveTree(fragment_tree)
        before = active.component_count(fragment_tree.root)
        cell_death = fragment_hierarchy.by_label("Cell Death")
        active.expand(
            fragment_tree.root, [(fragment_tree.parent(cell_death), cell_death)]
        )
        after = active.component_count(fragment_tree.root)
        assert before == 105
        assert after < before
