"""The unified solver registry: API surface and cross-solver equivalence.

The second half is the acceptance gate for the registry refactor: on
small random navigation trees (where the exhaustive oracle is feasible),
every solver advertising ``optimal=True`` must produce cuts and costs
bit-identical to ``opt_edgecut_reference``, and the heuristic must stay
within its documented ``cost_bound`` of the optimum even when forced
through its reduction path.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cost_model import CostParams
from repro.core.evaluation import expected_strategy_cost
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.strategy import ExpansionStrategy, SolverCapabilities
from repro.hierarchy.concept import ConceptHierarchy
from repro.pipeline.registry import SolverRegistry, default_registry

REFERENCE = "opt_edgecut_reference"


def random_scenario(size: int, seed: int):
    """A random ``size``-node navigation tree plus its probability model."""
    rng = random.Random(seed)
    h = ConceptHierarchy(root_label="r")
    nodes = [0]
    for i in range(size - 1):
        nodes.append(h.add_child(rng.choice(nodes), "c%d" % i))
    annotations = {
        n: set(rng.sample(range(120), rng.randint(1, 25))) for n in nodes
    }
    tree = NavigationTree.build(h, annotations)
    probs = ProbabilityModel(tree, lambda n: 500)
    return tree, probs


@pytest.fixture(scope="module")
def registry() -> SolverRegistry:
    return default_registry()


class TestRegistryApi:
    def test_six_canonical_solvers(self, registry):
        assert registry.names() == (
            "gopubmed",
            "heuristic",
            "opt_edgecut",
            REFERENCE,
            "paged_static",
            "static_nav",
        )

    def test_aliases_resolve_to_canonical_names(self, registry):
        assert registry.resolve("heuristic-reducedopt") == "heuristic"
        assert registry.resolve("static") == "static_nav"
        assert registry.resolve("paged-static") == "paged_static"
        assert registry.resolve("opt") == "opt_edgecut"
        assert registry.resolve("opt-edgecut") == "opt_edgecut"
        assert registry.resolve("opt-edgecut-reference") == REFERENCE

    def test_all_names_includes_aliases(self, registry):
        names = registry.all_names()
        assert set(registry.names()) < set(names)
        assert "static" in names and "opt" in names

    def test_contains(self, registry):
        assert "heuristic" in registry
        assert "static" in registry  # alias
        assert "magic" not in registry

    def test_unknown_name_rejected_with_catalog(self, registry):
        with pytest.raises(ValueError, match="heuristic"):
            registry.resolve("magic")
        tree, probs = random_scenario(3, 0)
        with pytest.raises(ValueError):
            registry.create("magic", tree, probs)

    def test_capabilities_lookup_follows_aliases(self, registry):
        caps = registry.capabilities("static")
        assert isinstance(caps, SolverCapabilities)
        assert caps.name == "static_nav"

    def test_catalog_sorted_and_complete(self, registry):
        catalog = registry.catalog()
        assert [c.name for c in catalog] == list(registry.names())
        assert all(c.description for c in catalog)

    def test_optimal_names(self, registry):
        assert registry.optimal_names() == ("opt_edgecut", REFERENCE)

    def test_created_solver_carries_its_capabilities(self, registry):
        tree, probs = random_scenario(4, 1)
        for name in registry.names():
            solver = registry.create(name, tree, probs)
            assert isinstance(solver, ExpansionStrategy)
            assert solver.capabilities == registry.capabilities(name)

    def test_unknown_options_are_ignored(self, registry):
        tree, probs = random_scenario(4, 2)
        solver = registry.create("static_nav", tree, probs, page_size=7, top_k=3)
        assert solver.capabilities.name == "static_nav"

    def test_duplicate_registration_rejected(self, registry):
        fresh = SolverRegistry()
        caps = registry.capabilities("static_nav")
        fresh.register(lambda *a, **k: None, caps, aliases=("static",))
        with pytest.raises(ValueError):
            fresh.register(lambda *a, **k: None, caps)
        other = registry.capabilities("heuristic")
        with pytest.raises(ValueError):
            fresh.register(lambda *a, **k: None, other, aliases=("static",))


class TestCrossSolverEquivalence:
    """Optimal solvers are bit-identical; the heuristic is cost-bounded."""

    def test_optimal_solvers_match_reference_bit_for_bit(self, registry):
        params = CostParams()
        optimal = [n for n in registry.optimal_names() if n != REFERENCE]
        assert optimal  # the refactor must not lose the fast engine
        for seed in range(40):
            rng = random.Random(seed)
            size = rng.randint(2, 10)
            tree, probs = random_scenario(size, 7_000 + seed)
            component = frozenset(tree.iter_dfs())
            oracle = registry.create(REFERENCE, tree, probs, params=params)
            expected = oracle.best_cut(component, tree.root)
            for name in optimal:
                solver = registry.create(name, tree, probs, params=params)
                decision = solver.best_cut(component, tree.root)
                assert decision.cut == expected.cut, "seed %d %s" % (seed, name)
                assert decision.expected_cost == expected.expected_cost, (
                    "seed %d %s" % (seed, name)
                )

    def test_heuristic_is_exact_below_its_reduction_threshold(self, registry):
        """Components at or below ``max_reduced_nodes`` skip the
        reduction, so the heuristic's cut is the optimal one."""
        for seed in range(20):
            rng = random.Random(seed)
            size = rng.randint(2, 10)
            tree, probs = random_scenario(size, 11_000 + seed)
            component = frozenset(tree.iter_dfs())
            oracle = registry.create(REFERENCE, tree, probs)
            heuristic = registry.create(
                "heuristic", tree, probs, max_reduced_nodes=10
            )
            assert heuristic.best_cut(component, tree.root).cut == (
                oracle.best_cut(component, tree.root).cut
            ), "seed %d" % seed

    def test_heuristic_stays_within_documented_cost_bound(self, registry):
        """Forced through the k-partition reduction (max_reduced_nodes=4
        on trees up to 10 nodes), the heuristic's expected navigation
        cost stays within ``capabilities.cost_bound`` of the optimum."""
        bound = registry.capabilities("heuristic").cost_bound
        assert bound is not None
        for seed in range(40):
            rng = random.Random(seed)
            size = rng.randint(2, 10)
            tree, probs = random_scenario(size, 1_000 + seed)
            oracle = registry.create(REFERENCE, tree, probs)
            heuristic = registry.create(
                "heuristic", tree, probs, max_reduced_nodes=4
            )
            optimum = expected_strategy_cost(tree, probs, oracle)
            achieved = expected_strategy_cost(tree, probs, heuristic)
            if optimum > 0:
                assert achieved <= bound * optimum, (
                    "seed %d: %.4f > %.2f * %.4f" % (seed, achieved, bound, optimum)
                )
            else:
                assert achieved <= 0.0

    def test_baselines_never_beat_the_optimum(self, registry):
        """Sanity direction check: no cost-agnostic baseline achieves a
        lower expected cost than the exact solver."""
        for seed in range(10):
            tree, probs = random_scenario(8, 21_000 + seed)
            oracle = registry.create(REFERENCE, tree, probs)
            optimum = expected_strategy_cost(tree, probs, oracle)
            for name in ("static_nav", "gopubmed", "paged_static"):
                baseline = registry.create(name, tree, probs)
                achieved = expected_strategy_cost(tree, probs, baseline)
                assert achieved >= optimum - 1e-9, "seed %d %s" % (seed, name)
