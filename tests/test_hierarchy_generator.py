"""Unit tests for repro.hierarchy.generator."""

from __future__ import annotations


from repro.hierarchy.generator import HierarchyGenerator, HierarchyShape, generate_hierarchy


class TestGeneration:
    def test_respects_target_size_approximately(self):
        h = generate_hierarchy(target_size=800, seed=1)
        assert 700 <= len(h) <= 850

    def test_root_fanout(self):
        h = generate_hierarchy(target_size=500, seed=2, root_fanout=17)
        assert len(h.children(h.root)) == 17

    def test_max_depth_respected(self):
        h = generate_hierarchy(target_size=3000, seed=3, max_depth=6)
        assert h.height() <= 6

    def test_deterministic_for_same_seed(self):
        a = generate_hierarchy(target_size=400, seed=9)
        b = generate_hierarchy(target_size=400, seed=9)
        assert a.to_records() == b.to_records()

    def test_different_seeds_differ(self):
        a = generate_hierarchy(target_size=400, seed=1)
        b = generate_hierarchy(target_size=400, seed=2)
        assert a.to_records() != b.to_records()

    def test_bushy_upper_levels(self):
        # MeSH-like silhouette: level 1+2 together hold a sizable share of
        # a shallow slice of the tree (wide at the top).
        h = generate_hierarchy(target_size=2000, seed=4)
        level_counts = {}
        for node in h.iter_dfs():
            level_counts[h.depth(node)] = level_counts.get(h.depth(node), 0) + 1
        assert level_counts[1] >= 20
        # The tree gets deep too.
        assert h.height() >= 4

    def test_labels_are_readable(self):
        h = generate_hierarchy(target_size=50, seed=5)
        for node in range(1, len(h)):
            assert h.label(node)
            assert "," in h.label(node)


class TestShape:
    def test_shape_defaults(self):
        shape = HierarchyShape()
        assert shape.max_depth == 11  # MeSH depth

    def test_generator_accepts_custom_shape(self):
        shape = HierarchyShape(target_size=120, root_fanout=5, max_depth=4)
        h = HierarchyGenerator(shape, seed=0).generate()
        assert len(h.children(h.root)) == 5
        assert h.height() <= 4

    def test_mesh_2008_preset_matches_paper_statistics(self):
        shape = HierarchyShape.mesh_2008()
        assert shape.target_size == 48_000  # "over 48,000 concept nodes"
        assert shape.root_fanout == 98      # Fig. 1: 98 children of the root

    def test_deep_preset_produces_deeper_trees(self):
        default = HierarchyGenerator(HierarchyShape(target_size=1500), seed=3).generate()
        deep = HierarchyGenerator(HierarchyShape.deep(target_size=1500), seed=3).generate()
        assert deep.height() > default.height()
