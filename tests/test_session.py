"""Unit tests for repro.core.session."""

from __future__ import annotations

import pytest

from repro.core.heuristic import HeuristicReducedOpt
from repro.core.session import NavigationSession
from repro.core.static_nav import StaticNavigation
from repro.core.strategy import CutDecision, ExpansionStrategy


class EmptyCutStrategy(ExpansionStrategy):
    name = "empty"

    def choose_cut(self, active, node):
        return CutDecision(cut=())


@pytest.fixture()
def session(fragment_tree, fragment_probs):
    strategy = HeuristicReducedOpt(fragment_tree, fragment_probs)
    return NavigationSession(fragment_tree, strategy)


@pytest.fixture()
def static_session(fragment_tree):
    return NavigationSession(fragment_tree, StaticNavigation(fragment_tree))


class TestExpand:
    def test_expand_charges_action_and_reveals(self, session, fragment_tree):
        outcome = session.expand(fragment_tree.root)
        assert session.ledger.expand_actions == 1
        assert session.ledger.concepts_revealed == len(outcome.revealed)
        assert session.navigation_cost == 1 + len(outcome.revealed)

    def test_expand_log_records_outcomes(self, session, fragment_tree):
        session.expand(fragment_tree.root)
        log = session.expand_log
        assert len(log) == 1
        assert log[0].node == fragment_tree.root

    def test_expand_reveals_visible_nodes(self, session, fragment_tree):
        outcome = session.expand(fragment_tree.root)
        for node in outcome.revealed:
            assert session.active.is_visible(node)

    def test_empty_cut_strategy_raises(self, fragment_tree):
        session = NavigationSession(fragment_tree, EmptyCutStrategy())
        with pytest.raises(ValueError):
            session.expand(fragment_tree.root)

    def test_static_expand_reveals_all_children(self, static_session, fragment_tree):
        outcome = static_session.expand(fragment_tree.root)
        assert set(outcome.revealed) == set(fragment_tree.children(fragment_tree.root))


class TestShowResults:
    def test_show_results_returns_component_citations(self, static_session, fragment_tree, fragment_hierarchy):
        static_session.expand(fragment_tree.root)
        # After static expansion of root, pick the branch holding Apoptosis.
        bio = fragment_hierarchy.by_label(
            "Biological Phenomena, Cell Phenomena, and Immunity"
        )
        visible = static_session.active.containing_root(
            fragment_hierarchy.by_label("Apoptosis")
        )
        pmids = static_session.show_results(visible)
        assert pmids == sorted(pmids)
        assert static_session.ledger.citations_displayed == len(pmids)

    def test_show_results_on_root_lists_everything(self, session, fragment_tree):
        pmids = session.show_results(fragment_tree.root)
        assert len(pmids) == len(fragment_tree.all_results())
        assert session.total_cost == session.navigation_cost + len(pmids)


class TestIgnore:
    def test_ignore_visible_node_is_free(self, session, fragment_tree):
        outcome = session.expand(fragment_tree.root)
        cost_before = session.total_cost
        session.ignore(outcome.revealed[0])
        assert session.total_cost == cost_before
        assert outcome.revealed[0] in session.ignored

    def test_ignore_hidden_node_rejected(self, session, fragment_tree, fragment_hierarchy):
        hidden = fragment_hierarchy.by_label("Euchromatin")
        with pytest.raises(ValueError):
            session.ignore(hidden)


class TestBacktrack:
    def test_backtrack_restores_tree_and_log(self, session, fragment_tree):
        session.expand(fragment_tree.root)
        assert session.backtrack()
        assert session.expand_log == []
        assert session.active.visible_nodes() == [fragment_tree.root]

    def test_backtrack_initial_state_false(self, session):
        assert not session.backtrack()

    def test_backtrack_does_not_refund_cost(self, session, fragment_tree):
        # The TOPDOWN cost model has no refunds: effort already spent stays.
        session.expand(fragment_tree.root)
        cost = session.navigation_cost
        session.backtrack()
        assert session.navigation_cost == cost


class TestVisualize:
    def test_visualize_matches_active_tree(self, session, fragment_tree):
        session.expand(fragment_tree.root)
        rows = session.visualize()
        assert rows[0].node == fragment_tree.root
        visible = set(session.active.visible_nodes())
        assert {r.node for r in rows} == visible


class TestProfiler:
    def test_expand_records_timing(self, fragment_tree, fragment_probs):
        from repro.analysis.runtime import SolverProfile

        profile = SolverProfile()
        strategy = HeuristicReducedOpt(fragment_tree, fragment_probs)
        session = NavigationSession(fragment_tree, strategy, profiler=profile)
        outcome = session.expand(fragment_tree.root)
        assert len(profile) == 1
        record = profile.records[0]
        assert record.node == fragment_tree.root
        assert record.seconds == outcome.elapsed_seconds >= 0.0
        assert record.reduced_size == outcome.decision.reduced_size

    def test_expand_outcome_carries_elapsed_without_profiler(
        self, session, fragment_tree
    ):
        outcome = session.expand(fragment_tree.root)
        assert outcome.elapsed_seconds >= 0.0

    def test_failed_expand_records_nothing(self, fragment_tree, fragment_probs):
        from repro.analysis.runtime import SolverProfile

        profile = SolverProfile()
        session = NavigationSession(
            fragment_tree, EmptyCutStrategy(), profiler=profile
        )
        with pytest.raises(ValueError):
            session.expand(fragment_tree.root)
        assert len(profile) == 0
