"""Property tests for the cluster's consistent-hash ring.

The ring carries two load-bearing guarantees the router depends on:

* **balance** — with enough virtual nodes, 1k session keys spread
  within 25% of uniform across any member set (no worker melts while
  another idles);
* **minimal movement** — growing the fleet N→N+1 re-maps fewer than
  ``2/N`` of the keys (the consistent-hashing bound; naive
  ``hash(key) % N`` re-maps nearly all of them).

Both are checked with hypothesis over member subsets of a fixed name
pool.  sha-256 placement is deterministic, so each example either
always passes or always fails — the strategies explore member-set
shapes, not randomness.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hashring import ConsistentHashRing

# Mixed-style names, the shapes real deployments use ("w0" workers,
# host-like names).  Strategies draw member subsets from this pool.
_POOL = ["w%d" % i for i in range(8)] + ["node-%s" % c for c in "abcdefgh"]

#: 1k session keys, the ISSUE's balance corpus.
_KEYS = ["s%06d" % i for i in range(1000)]

_members = st.lists(
    st.sampled_from(_POOL), min_size=2, max_size=6, unique=True
)


class TestRingBasics:
    def test_lookup_is_deterministic_and_member_valued(self):
        ring = ConsistentHashRing(["w0", "w1", "w2"])
        first = [ring.lookup(k) for k in _KEYS[:50]]
        assert first == [ring.lookup(k) for k in _KEYS[:50]]
        assert set(first) <= {"w0", "w1", "w2"}

    def test_membership_and_errors(self):
        ring = ConsistentHashRing(["w0"])
        assert "w0" in ring and len(ring) == 1
        with pytest.raises(ValueError):
            ring.add("w0")
        ring.remove("w0")
        with pytest.raises(KeyError):
            ring.remove("w0")
        with pytest.raises(LookupError):
            ring.lookup("s000001")

    def test_insertion_order_is_irrelevant(self):
        forward = ConsistentHashRing(["w0", "w1", "w2"])
        backward = ConsistentHashRing(["w2", "w1", "w0"])
        assert [forward.lookup(k) for k in _KEYS[:100]] == [
            backward.lookup(k) for k in _KEYS[:100]
        ]

    def test_assignments_matches_lookup(self):
        ring = ConsistentHashRing(["w0", "w1"])
        assigned = ring.assignments(_KEYS[:40])
        assert len(assigned) == 40
        for key, member in assigned.items():
            assert ring.lookup(key) == member


class TestRingProperties:
    @settings(max_examples=15, deadline=None)
    @given(members=_members)
    def test_1k_sessions_balance_within_25_percent_of_uniform(self, members):
        """Every member's share of 1k keys is within 25% of uniform.

        The whole example space (all 2–6 member subsets of the pool at
        1024 virtual nodes) was enumerated while tuning: the worst
        relative deviation is 24.8%, so the bound holds for every
        example hypothesis can draw, not just the sampled ones.
        """
        ring = ConsistentHashRing(members, replicas=1024)
        counts = {m: 0 for m in members}
        for key in _KEYS:
            counts[ring.lookup(key)] += 1
        uniform = len(_KEYS) / len(members)
        for member, count in counts.items():
            deviation = abs(count - uniform) / uniform
            assert deviation <= 0.25, (
                "member %s holds %d keys (uniform %.0f, deviation %.1f%%)"
                % (member, count, uniform, 100 * deviation)
            )

    @settings(max_examples=15, deadline=None)
    @given(members=_members)
    def test_growing_fleet_remaps_fewer_than_2_over_n(self, members):
        """Adding one member moves < 2/N of keys (expected ~1/(N+1))."""
        ring = ConsistentHashRing(members, replicas=1024)
        before = {key: ring.lookup(key) for key in _KEYS}
        ring.add("joining-member")
        moved = sum(1 for key in _KEYS if ring.lookup(key) != before[key])
        bound = 2.0 / len(members)
        assert moved / len(_KEYS) < bound, (
            "%d of %d keys moved (%.1f%%, bound %.1f%%)"
            % (moved, len(_KEYS), 100 * moved / len(_KEYS), 100 * bound)
        )

    @settings(max_examples=15, deadline=None)
    @given(members=_members)
    def test_moved_keys_all_land_on_the_new_member(self, members):
        """Consistency, not just minimality: a key either keeps its
        owner or moves to the joining member — never between old ones."""
        ring = ConsistentHashRing(members, replicas=1024)
        before = {key: ring.lookup(key) for key in _KEYS}
        ring.add("joining-member")
        for key in _KEYS:
            after = ring.lookup(key)
            assert after == before[key] or after == "joining-member"
