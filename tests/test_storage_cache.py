"""Unit tests for the deprecated single-threaded LRU cache."""

from __future__ import annotations

import pytest

from repro.storage.cache import LRUCache

# The class still has to *work* (it is kept for external callers), so the
# behavioural tests silence the deprecation it now emits on construction.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestDeprecation:
    @pytest.mark.filterwarnings("default::DeprecationWarning")
    def test_construction_warns_with_migration_pointer(self):
        with pytest.warns(DeprecationWarning, match="SingleFlightCache"):
            LRUCache(2)


class TestLRUCache:
    def test_put_get(self):
        cache: LRUCache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_none(self):
        cache: LRUCache = LRUCache(2)
        assert cache.get("missing") is None
        assert cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache: LRUCache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache: LRUCache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_get_or_create_builds_once(self):
        cache: LRUCache = LRUCache(2)
        calls = []

        def factory():
            calls.append(1)
            return "built"

        assert cache.get_or_create("k", factory) == "built"
        assert cache.get_or_create("k", factory) == "built"
        assert len(calls) == 1

    def test_hit_rate(self):
        cache: LRUCache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate_is_zero(self):
        assert LRUCache(1).hit_rate == 0.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_clear(self):
        cache: LRUCache = LRUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache

    def test_items_snapshot_does_not_touch_stats_or_recency(self):
        cache: LRUCache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        hits, misses = cache.hits, cache.misses
        assert cache.items() == [("a", 1), ("b", 2)]
        assert (cache.hits, cache.misses) == (hits, misses)
        # "a" was NOT refreshed by items(): it is still the LRU entry.
        cache.put("c", 3)
        assert "a" not in cache
        assert "b" in cache
