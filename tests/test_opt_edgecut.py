"""Unit tests for repro.core.opt_edgecut."""

from __future__ import annotations

import itertools

import pytest

from repro.core.cost_model import CostParams
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import MAX_OPT_NODES, BestCut, CutTree, OptEdgeCut
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.concept import ConceptHierarchy


def make_tree(annotations):
    # root(0) -> a(1) -> b(2), c(3);  root -> d(4)
    h = ConceptHierarchy(root_label="root")
    a = h.add_child(0, "a")
    h.add_child(a, "b")
    h.add_child(a, "c")
    h.add_child(0, "d")
    return NavigationTree.build(h, annotations)


@pytest.fixture()
def tree():
    return make_tree(
        {
            1: set(range(0, 30)),
            2: set(range(0, 15)),
            3: set(range(15, 30)),
            4: set(range(30, 60)),
        }
    )


@pytest.fixture()
def probs(tree):
    return ProbabilityModel(tree, lambda n: 1000, upper_threshold=20, lower_threshold=5)


class TestCutTree:
    def test_from_component_payload_maps_back(self, tree, probs):
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        assert cut_tree.payload[0] == tree.root
        assert set(cut_tree.payload) == set(component)

    def test_from_component_preserves_structure(self, tree, probs):
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        index = {payload: i for i, payload in enumerate(cut_tree.payload)}
        for parent, child in tree.edges():
            assert index[child] in cut_tree.children[index[parent]]

    def test_from_sub_component(self, tree, probs):
        component = frozenset({1, 2, 3})
        cut_tree = CutTree.from_component(tree, probs, component, 1)
        assert len(cut_tree) == 3
        assert cut_tree.payload[0] == 1

    def test_disconnected_component_rejected(self, tree, probs):
        with pytest.raises(ValueError):
            CutTree.from_component(tree, probs, frozenset({0, 2}), 0)

    def test_subtree_indices(self, tree, probs):
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        root_subtree = cut_tree.subtree_indices(0)
        assert root_subtree == frozenset(range(len(cut_tree)))

    def test_mismatched_field_lengths_rejected(self):
        with pytest.raises(ValueError):
            CutTree(
                children=[[]],
                results=[frozenset(), frozenset()],
                explore=[1.0],
                member_counts=[[0]],
                payload=[0],
            )


class TestOptEdgeCut:
    def test_rejects_oversized_trees(self, tree, probs):
        huge = CutTree(
            children=[[i + 1] for i in range(MAX_OPT_NODES)] + [[]],
            results=[frozenset({i}) for i in range(MAX_OPT_NODES + 1)],
            explore=[1.0] * (MAX_OPT_NODES + 1),
            member_counts=[[1]] * (MAX_OPT_NODES + 1),
            payload=list(range(MAX_OPT_NODES + 1)),
        )
        with pytest.raises(ValueError):
            OptEdgeCut(huge, probs)

    def test_solves_whole_tree(self, tree, probs):
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        best = OptEdgeCut(cut_tree, probs).solve()
        assert isinstance(best, BestCut)
        assert best.cut  # the full tree is expandable
        assert best.expected_cost > 0

    def test_singleton_component_has_no_cut(self, tree, probs):
        cut_tree = CutTree.from_component(tree, probs, frozenset({4}), 4)
        best = OptEdgeCut(cut_tree, probs).solve()
        assert best.cut == ()
        assert best.expansion_term == 0.0

    def test_optimal_beats_every_enumerated_cut(self, tree, probs):
        """Exhaustive check: no single first cut leads to lower cost."""
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        solver = OptEdgeCut(cut_tree, probs)
        best = solver.solve()
        all_cuts = [
            c for c in solver._enumerate_cuts(0, frozenset(range(len(cut_tree)))) if c
        ]
        for cut in all_cuts:
            term = solver._expansion_term(frozenset(range(len(cut_tree))), 0, cut)
            assert best.expansion_term <= term + 1e-12

    def test_memoization_reuses_components(self, tree, probs):
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        solver = OptEdgeCut(cut_tree, probs)
        solver.solve()
        memo_size = len(solver._memo)
        solver.solve()  # second call hits the memo
        assert len(solver._memo) == memo_size

    def test_enumerated_cuts_are_antichains(self, tree, probs):
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        solver = OptEdgeCut(cut_tree, probs)
        for cut in solver._enumerate_cuts(0, frozenset(range(len(cut_tree)))):
            children_cut = [child for _, child in cut]
            for a, b in itertools.combinations(children_cut, 2):
                assert a not in cut_tree.subtree_indices(b)
                assert b not in cut_tree.subtree_indices(a)

    def test_expand_cost_increase_reveals_more(self, tree, probs):
        """Paper §III: a higher EXPAND cost reveals more concepts per cut."""
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        cheap = OptEdgeCut(cut_tree, probs, CostParams(expand_cost=0.1)).solve()
        expensive = OptEdgeCut(cut_tree, probs, CostParams(expand_cost=50.0)).solve()
        assert len(expensive.cut) >= len(cheap.cut)

    def test_duplicate_aware_grouping(self):
        """Concepts sharing citations should be grouped, not split apart.

        Nodes b and c duplicate the same citations; d holds different
        ones.  With SHOWRESULTS likely (low expand probability), cutting
        between b/c wastes user effort re-reading duplicates.
        """
        tree = make_tree(
            {
                1: set(range(0, 12)),
                2: set(range(0, 12)),   # pure duplicates of a
                3: set(range(0, 12)),   # pure duplicates of a
                4: set(range(20, 32)),  # disjoint
            }
        )
        probs = ProbabilityModel(tree, lambda n: 1000, upper_threshold=100, lower_threshold=1)
        component = frozenset(tree.iter_dfs())
        cut_tree = CutTree.from_component(tree, probs, component, tree.root)
        best = OptEdgeCut(cut_tree, probs).solve()
        index = {payload: i for i, payload in enumerate(cut_tree.payload)}
        cut_children = {cut_tree.payload[c] for _, c in best.cut}
        # The duplicate-heavy a-subtree should not be split internally:
        # edges (1,2) and (1,3) stay uncut.
        assert 2 not in cut_children
        assert 3 not in cut_children
