"""Unit tests for repro.hierarchy.concept."""

from __future__ import annotations

import pytest

from repro.hierarchy.concept import Concept, ConceptHierarchy


@pytest.fixture()
def small() -> ConceptHierarchy:
    #        root
    #       /    \
    #      a      b
    #     / \      \
    #    c   d      e
    h = ConceptHierarchy(root_label="root")
    a = h.add_child(0, "a")
    b = h.add_child(0, "b")
    h.add_child(a, "c")
    h.add_child(a, "d")
    h.add_child(b, "e")
    return h


class TestConstruction:
    def test_new_hierarchy_has_only_root(self):
        h = ConceptHierarchy()
        assert len(h) == 1
        assert h.root == 0
        assert h.label(0) == "MeSH"

    def test_add_child_returns_sequential_ids(self, small):
        assert small.label(1) == "a"
        assert small.label(2) == "b"
        assert len(small) == 6

    def test_add_child_to_bad_parent_raises(self, small):
        with pytest.raises(IndexError):
            small.add_child(99, "x")

    def test_duplicate_uid_rejected(self):
        h = ConceptHierarchy()
        h.add_child(0, "a", uid="X")
        with pytest.raises(ValueError):
            h.add_child(0, "b", uid="X")

    def test_auto_uid_is_unique(self, small):
        uids = [small.uid(n) for n in range(len(small))]
        assert len(set(uids)) == len(uids)


class TestAccessors:
    def test_parent_of_root_is_minus_one(self, small):
        assert small.parent(0) == -1

    def test_parent_child_round_trip(self, small):
        for node in range(1, len(small)):
            assert node in small.children(small.parent(node))

    def test_children_are_in_insertion_order(self, small):
        assert small.children(0) == (1, 2)
        assert small.children(1) == (3, 4)

    def test_depths(self, small):
        assert small.depth(0) == 0
        assert small.depth(1) == 1
        assert small.depth(3) == 2

    def test_is_leaf(self, small):
        assert small.is_leaf(3)
        assert not small.is_leaf(1)

    def test_by_uid_and_by_label(self, small):
        assert small.by_label("c") == 3
        assert small.by_uid(small.uid(4)) == 4

    def test_by_label_missing_raises(self, small):
        with pytest.raises(KeyError):
            small.by_label("nope")

    def test_concept_view(self, small):
        concept = small.concept(3)
        assert isinstance(concept, Concept)
        assert concept.label == "c"
        assert concept.depth == 2
        assert concept.tree_number == "001.001"

    def test_bad_node_id_raises(self, small):
        with pytest.raises(IndexError):
            small.label(-1)
        with pytest.raises(IndexError):
            small.children(len(small))


class TestRelabel:
    def test_relabel_changes_label_and_index(self, small):
        small.relabel(3, "Apoptosis")
        assert small.label(3) == "Apoptosis"
        assert small.by_label("Apoptosis") == 3

    def test_relabel_removes_old_index_entry(self, small):
        small.relabel(3, "renamed")
        with pytest.raises(KeyError):
            small.by_label("c")

    def test_relabel_keeps_other_duplicate_label(self):
        h = ConceptHierarchy()
        first = h.add_child(0, "dup")
        second = h.add_child(0, "dup")
        h.relabel(first, "unique")
        # The other holder of "dup" is still findable.
        assert h.by_label("dup") == second


class TestTreeNumbers:
    def test_root_tree_number_is_empty(self, small):
        assert small.tree_number(0) == ""

    def test_tree_numbers_encode_sibling_positions(self, small):
        assert small.tree_number(1) == "001"
        assert small.tree_number(2) == "002"
        assert small.tree_number(4) == "001.002"
        assert small.tree_number(5) == "002.001"

    def test_path_to_root(self, small):
        assert small.path_to_root(3) == [3, 1, 0]
        assert small.path_to_root(0) == [0]


class TestAncestry:
    def test_node_is_its_own_ancestor(self, small):
        assert small.is_ancestor(3, 3)

    def test_root_is_ancestor_of_all(self, small):
        assert all(small.is_ancestor(0, n) for n in range(len(small)))

    def test_non_ancestor(self, small):
        assert not small.is_ancestor(1, 5)
        assert not small.is_ancestor(3, 1)

    def test_lowest_common_ancestor(self, small):
        assert small.lowest_common_ancestor(3, 4) == 1
        assert small.lowest_common_ancestor(3, 5) == 0
        assert small.lowest_common_ancestor(1, 3) == 1


class TestTraversals:
    def test_dfs_is_preorder(self, small):
        assert list(small.iter_dfs()) == [0, 1, 3, 4, 2, 5]

    def test_postorder_visits_children_first(self, small):
        order = list(small.iter_postorder())
        assert order == [3, 4, 1, 5, 2, 0]

    def test_subtree(self, small):
        assert small.subtree(1) == [1, 3, 4]
        assert small.subtree_size(1) == 3

    def test_leaves(self, small):
        assert small.leaves() == [3, 4, 5]

    def test_height_and_width(self, small):
        assert small.height() == 2
        assert small.max_width() == 3  # depth 2 has c, d, e
        assert small.height(1) == 1


class TestSerialization:
    def test_records_round_trip(self, small):
        rebuilt = ConceptHierarchy.from_records(small.to_records())
        assert len(rebuilt) == len(small)
        for node in range(len(small)):
            assert rebuilt.label(node) == small.label(node)
            assert rebuilt.parent(node) == small.parent(node)
            assert rebuilt.uid(node) == small.uid(node)

    def test_from_records_requires_root_first(self):
        with pytest.raises(ValueError):
            ConceptHierarchy.from_records([("X", "x", 0)])

    def test_from_records_empty_raises(self):
        with pytest.raises(ValueError):
            ConceptHierarchy.from_records([])
