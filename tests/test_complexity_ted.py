"""Unit tests for repro.complexity.ted."""

from __future__ import annotations

import pytest

from repro.complexity.ted import (
    ElementTree,
    duplicates_in_subtrees,
    ted_best_duplicates,
    ted_decision,
    ted_expected_cost,
)


@pytest.fixture()
def star() -> ElementTree:
    # Empty root with three leaves; x shared by 1&2, y by 2&3.
    return ElementTree(
        parents=[-1, 0, 0, 0],
        elements=[[], ["x"], ["x", "y"], ["y", "z"]],
    )


@pytest.fixture()
def chain() -> ElementTree:
    # 0 -> 1 -> 2, with a duplicate across 1 and 2.
    return ElementTree(parents=[-1, 0, 1], elements=[["a"], ["b"], ["b", "c"]])


class TestElementTree:
    def test_structure(self, star):
        assert len(star) == 4
        assert star.children[0] == [1, 2, 3]
        assert star.subtree(0) == [0, 3, 2, 1] or set(star.subtree(0)) == {0, 1, 2, 3}

    def test_root_must_be_first(self):
        with pytest.raises(ValueError):
            ElementTree(parents=[0, -1], elements=[[], []])

    def test_parents_must_precede_children(self):
        with pytest.raises(ValueError):
            ElementTree(parents=[-1, 2, 1], elements=[[], [], []])

    def test_lengths_must_match(self):
        with pytest.raises(ValueError):
            ElementTree(parents=[-1, 0], elements=[[]])

    def test_total_elements_counts_multiplicity(self):
        tree = ElementTree(parents=[-1, 0], elements=[["a", "a"], ["a"]])
        assert tree.total_elements() == 3

    def test_enumerate_valid_cuts_star(self, star):
        cuts = star.enumerate_valid_cuts()
        # Independent choice per leaf edge: 2^3 cuts including empty.
        assert len(cuts) == 8

    def test_enumerate_valid_cuts_chain(self, chain):
        cuts = {frozenset(c) for c in chain.enumerate_valid_cuts()}
        assert cuts == {
            frozenset(),
            frozenset({(0, 1)}),
            frozenset({(1, 2)}),
        }

    def test_cut_subtrees(self, star):
        pieces = star.cut_subtrees([(0, 2)])
        assert sorted(pieces[0]) == [0, 1, 3]
        assert pieces[1] == [2]

    def test_invalid_cut_detected(self, chain):
        with pytest.raises(ValueError):
            chain.cut_subtrees([(0, 1), (1, 2)])


class TestDuplicates:
    def test_whole_tree_duplicates(self, star):
        assert duplicates_in_subtrees(star, [star.subtree(0)]) == 2  # x and y

    def test_fully_separated_no_duplicates(self, star):
        pieces = star.cut_subtrees([(0, 1), (0, 2), (0, 3)])
        assert duplicates_in_subtrees(star, pieces) == 0

    def test_in_node_multiplicity_counts(self):
        tree = ElementTree(parents=[-1], elements=[["a", "a", "a"]])
        assert duplicates_in_subtrees(tree, [[0]]) == 2


class TestTEDSolvers:
    def test_best_duplicates_for_each_subtree_count(self, star):
        assert ted_best_duplicates(star, 1) == 2       # empty cut keeps x and y
        assert ted_best_duplicates(star, 2) == 1       # sever one leaf
        assert ted_best_duplicates(star, 4) == 0       # fully separated
        assert ted_best_duplicates(star, 5) is None    # impossible

    def test_decision(self, star):
        assert ted_decision(star, 2, 1)
        assert not ted_decision(star, 2, 2)
        assert not ted_decision(star, 9, 0)

    def test_n_subtrees_must_be_positive(self, star):
        with pytest.raises(ValueError):
            ted_best_duplicates(star, 0)

    def test_expected_cost(self, star):
        # Empty cut: 1 subtree, all 5 element slots, 2 duplicates → 1 + 3/1.
        assert ted_expected_cost(star, []) == pytest.approx(4.0)
        # Full separation: 4 subtrees, 5 distinct slots → 4 + 5/4.
        full = [(0, 1), (0, 2), (0, 3)]
        assert ted_expected_cost(star, full) == pytest.approx(4 + 5 / 4)

    def test_expected_cost_tradeoff(self, star):
        """The §V trade-off: more subtrees read labels, fewer share duplicates."""
        costs = {
            n: min(
                ted_expected_cost(star, cut)
                for cut in star.enumerate_valid_cuts()
                if len(cut) + 1 == n
            )
            for n in (1, 2, 3, 4)
        }
        # Neither extreme dominates automatically; the optimum exists.
        assert min(costs.values()) <= costs[1]
        assert min(costs.values()) <= costs[4]
