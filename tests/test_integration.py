"""Integration tests: the full pipeline on the materialized workload.

These assert the paper's qualitative claims end to end — offline build →
ESearch → navigation-tree construction → strategy-driven navigation —
on trees large enough for the claims to hold.
"""

from __future__ import annotations

import pytest

from repro.core.heuristic import HeuristicReducedOpt
from repro.core.simulator import navigate_to_target
from repro.core.static_nav import StaticNavigation


@pytest.fixture(scope="module")
def prepared_queries(request):
    workload = request.getfixturevalue("small_workload")
    return workload.prepare_all()


class TestHeadlineClaims:
    def test_every_target_reachable_by_both_strategies(self, prepared_queries):
        for prepared in prepared_queries:
            for strategy in (
                StaticNavigation(prepared.tree),
                HeuristicReducedOpt(prepared.tree, prepared.probs),
            ):
                outcome = navigate_to_target(
                    prepared.tree, strategy, prepared.target_node, show_results=False
                )
                assert outcome.reached, (prepared.spec.keyword, strategy.name)

    def test_bionav_beats_static_on_every_query(self, prepared_queries):
        """Fig. 8: BioNav's navigation cost is lower for all ten queries."""
        for prepared in prepared_queries:
            static = navigate_to_target(
                prepared.tree,
                StaticNavigation(prepared.tree),
                prepared.target_node,
                show_results=False,
            )
            bionav = navigate_to_target(
                prepared.tree,
                HeuristicReducedOpt(prepared.tree, prepared.probs),
                prepared.target_node,
                show_results=False,
            )
            assert bionav.navigation_cost < static.navigation_cost, prepared.spec.keyword

    def test_average_improvement_is_large(self, prepared_queries):
        """Fig. 8: the paper reports an 85% average improvement; our
        substrate should land in the same band (>= 60%)."""
        improvements = []
        for prepared in prepared_queries:
            static = navigate_to_target(
                prepared.tree,
                StaticNavigation(prepared.tree),
                prepared.target_node,
                show_results=False,
            )
            bionav = navigate_to_target(
                prepared.tree,
                HeuristicReducedOpt(prepared.tree, prepared.probs),
                prepared.target_node,
                show_results=False,
            )
            improvements.append(1 - bionav.navigation_cost / static.navigation_cost)
        assert sum(improvements) / len(improvements) >= 0.60

    def test_reduced_trees_capped_at_ten(self, prepared_queries):
        """§VI-B: Opt-EdgeCut only ever sees at most N=10 supernodes."""
        prepared = prepared_queries[4]  # prothymosin
        strategy = HeuristicReducedOpt(prepared.tree, prepared.probs, max_reduced_nodes=10)
        outcome = navigate_to_target(
            prepared.tree, strategy, prepared.target_node, show_results=False
        )
        assert all(record.reduced_size <= 10 for record in outcome.expands)


class TestOnlinePipeline:
    def test_query_results_attach_to_tree(self, small_workload):
        prepared = small_workload.prepare("dyslexia genetics")
        attached = prepared.tree.all_results()
        assert attached == frozenset(prepared.pmids)

    def test_tree_contains_no_empty_non_root_nodes(self, small_workload):
        prepared = small_workload.prepare("syntaxin 1A")
        for node in prepared.tree.nodes():
            if node != prepared.tree.root:
                assert prepared.tree.results(node)

    def test_show_results_returns_real_pmids(self, small_workload):
        prepared = small_workload.prepare("melibiose permease")
        strategy = HeuristicReducedOpt(prepared.tree, prepared.probs)
        outcome = navigate_to_target(prepared.tree, strategy, prepared.target_node)
        assert outcome.citations_displayed >= 2
        # The target's citations exist in MEDLINE and are fetchable.
        pmids = sorted(prepared.tree.results(prepared.target_node))
        summaries = small_workload.entrez.esummary(pmids[:3])
        assert len(summaries) == 3

    def test_database_round_trip_preserves_navigation(self, small_workload, tmp_path):
        """Save/load the BioNav database and navigate identically."""
        from repro.core.navigation_tree import NavigationTree
        from repro.storage.database import BioNavDatabase

        path = str(tmp_path / "db.json")
        small_workload.database.save(path)
        loaded = BioNavDatabase.load(path, medline=small_workload.medline)
        pmids = small_workload.entrez.esearch_all("LbetaT2")
        original = NavigationTree.build(
            small_workload.hierarchy,
            small_workload.database.annotations_for_result(pmids),
        )
        restored = NavigationTree.build(
            loaded.hierarchy, loaded.annotations_for_result(pmids)
        )
        assert sorted(original.nodes()) == sorted(restored.nodes())
        assert original.citations_with_duplicates() == restored.citations_with_duplicates()
