"""Tests for the ``tools/analyzer`` static-analysis framework.

Per-rule fixture snippets (positive, negative, suppressed, baselined),
framework mechanics (registry, suppressions, baseline, reporters), the
acceptance fixtures from the issue (unsorted set iteration in
``core/opt_edgecut.py``, recursion in ``navigation_tree.py``, float
``==`` in ``cost_model.py``), and the ``tools/lint.py`` shim CLI.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analyzer import all_rules, analyze  # noqa: E402
from tools.analyzer.baseline import (  # noqa: E402
    apply_baseline,
    load_baseline,
    write_baseline,
)
from tools.analyzer.reporters import json_report, text_report  # noqa: E402
from tools.analyzer.runner import main  # noqa: E402
from tools.analyzer.rules import bitmask  # noqa: E402


def run_rules(tmp_path, relpath, source, lint_only=False):
    """Write one fixture file and return its findings (no baseline)."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    findings, _, _, _ = analyze(
        paths=[str(target)],
        lint_only=lint_only,
        baseline_path=tmp_path / "no-baseline.json",
    )
    return findings


def rule_ids(findings):
    return {f.rule for f in findings}


class TestRegistry:
    def test_rule_catalog_is_complete(self):
        ids = {rule.id for rule in all_rules()}
        assert {
            "syntax-error",
            "unused-import",
            "duplicate-import",
            "star-import",
            "mutable-default",
            "shadowed-builtin",
            "bare-except",
            "missing-hints",
            "determinism",
            "no-recursion",
            "float-equality",
            "bitmask-bounds",
            "lock-discipline",
            "solver-via-registry",
            "substrate-boundary",
            "vectorize",
        } <= ids

    def test_lint_only_subset_excludes_semantic_rules(self):
        lint_ids = {rule.id for rule in all_rules(lint_only=True)}
        assert "unused-import" in lint_ids
        assert "determinism" not in lint_ids
        assert "no-recursion" not in lint_ids

    def test_every_rule_has_severity_and_description(self):
        for rule in all_rules():
            assert rule.severity in ("error", "warning")
            assert rule.description

    def test_bitmask_width_matches_solver_constant(self):
        from repro.core.opt_edgecut import MAX_OPT_NODES

        assert bitmask.MAX_OPT_NODES == MAX_OPT_NODES


class TestDeterminismRule:
    def test_flags_set_iteration_in_core(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/opt_edgecut.py",
            "def f(xs):\n    total = 0.0\n    for x in set(xs):\n        total += x\n    return total\n",
        )
        assert "determinism" in rule_ids(findings)

    def test_flags_frozenset_annotated_parameter(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "from typing import FrozenSet\n"
            "def f(component: FrozenSet[int]):\n"
            "    return [x + 1 for x in component]\n",
        )
        assert "determinism" in rule_ids(findings)

    def test_sorted_iteration_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "def f(xs):\n    return [x for x in sorted(set(xs))]\n",
        )
        assert "determinism" not in rule_ids(findings)

    def test_order_free_consumption_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "def f(xs):\n    s = set(xs)\n    return len(s), min(s), frozenset(s)\n",
        )
        assert "determinism" not in rule_ids(findings)

    def test_outside_core_not_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "web/mod.py",
            "def f(xs):\n    return [x for x in set(xs)]\n",
        )
        assert "determinism" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "def f(xs):\n"
            "    mask = 0\n"
            "    for x in set(xs):  # repro: ignore[determinism]\n"
            "        mask |= x\n"
            "    return mask\n",
        )
        assert "determinism" not in rule_ids(findings)


class TestNoRecursionRule:
    def test_flags_recursive_function(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "navigation_tree.py",
            "def walk(node):\n    for child in node.children:\n        walk(child)\n",
        )
        assert "no-recursion" in rule_ids(findings)

    def test_flags_recursive_method(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "active_tree.py",
            "class T:\n"
            "    def visit(self, n):\n"
            "        for c in n.children:\n"
            "            self.visit(c)\n",
        )
        assert "no-recursion" in rule_ids(findings)

    def test_iterative_traversal_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "partition.py",
            "def walk(root):\n"
            "    stack = [root]\n"
            "    while stack:\n"
            "        node = stack.pop()\n"
            "        stack.extend(node.children)\n",
        )
        assert "no-recursion" not in rule_ids(findings)

    def test_other_modules_may_recurse(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/other.py",
            "def walk(node):\n    return [walk(c) for c in node.children]\n",
        )
        assert "no-recursion" not in rule_ids(findings)


class TestFloatEqualityRule:
    def test_flags_float_equality(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "cost_model.py",
            "def f(x):\n    return x == 0.0\n",
        )
        assert "float-equality" in rule_ids(findings)

    def test_flags_division_inequality_comparison(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "probabilities.py",
            "def f(a, b, c):\n    return a / b != c\n",
        )
        assert "float-equality" in rule_ids(findings)

    def test_ordering_comparisons_are_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "cost_model.py",
            "def f(x):\n    return x <= 0.0 or x > 1.0\n",
        )
        assert "float-equality" not in rule_ids(findings)

    def test_sanctioned_helper_is_exempt(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "cost_model.py",
            "def costs_equal(a, b):\n    return a == b * 1.0\n",
        )
        assert "float-equality" not in rule_ids(findings)

    def test_integer_equality_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "cost_model.py",
            "def f(n):\n    return n == 0\n",
        )
        assert "float-equality" not in rule_ids(findings)


class TestBitmaskBoundsRule:
    def test_flags_literal_shift_amount(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "opt_edgecut.py",
            "def f(x):\n    return x << 16\n",
        )
        assert "bitmask-bounds" in rule_ids(findings)

    def test_flags_hand_written_mask(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "opt_edgecut.py",
            "def f(x):\n    return x & 0x1FFFF\n",
        )
        assert "bitmask-bounds" in rule_ids(findings)

    def test_flags_literal_size_cap(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "opt_edgecut.py",
            "def f(tree):\n    if len(tree) > 16:\n        raise ValueError\n",
        )
        assert "bitmask-bounds" in rule_ids(findings)

    def test_index_shift_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "opt_edgecut.py",
            "def f(node, mask):\n    return mask | (1 << node)\n",
        )
        assert "bitmask-bounds" not in rule_ids(findings)

    def test_only_applies_to_opt_edgecut(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/other.py",
            "def f(x):\n    return x << 16\n",
        )
        assert "bitmask-bounds" not in rule_ids(findings)


_LOCKED_CLASS_HEADER = (
    "import threading\n"
    "class Cache:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.hits = 0\n"
    "        self._entries = {}\n"
)


class TestLockDisciplineRule:
    def test_flags_unlocked_counter_update(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/cache.py",
            _LOCKED_CLASS_HEADER + "    def bump(self):\n        self.hits += 1\n",
        )
        assert "lock-discipline" in rule_ids(findings)

    def test_flags_unlocked_subscript_write(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/cache.py",
            _LOCKED_CLASS_HEADER
            + "    def put(self, k, v):\n        self._entries[k] = v\n",
        )
        assert "lock-discipline" in rule_ids(findings)

    def test_locked_mutation_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/cache.py",
            _LOCKED_CLASS_HEADER
            + "    def bump(self):\n"
            + "        with self._lock:\n"
            + "            self.hits += 1\n"
            + "            self._entries['k'] = 1\n",
        )
        assert "lock-discipline" not in rule_ids(findings)

    def test_init_and_locked_helpers_are_exempt(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/cache.py",
            _LOCKED_CLASS_HEADER
            + "    def _insert_locked(self, k, v):\n"
            + "        self._entries[k] = v\n",
        )
        assert "lock-discipline" not in rule_ids(findings)

    def test_class_without_lock_not_checked(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/views.py",
            "class Renderer:\n"
            "    def __init__(self):\n"
            "        self.pages = 0\n"
            "    def bump(self):\n"
            "        self.pages += 1\n",
        )
        assert "lock-discipline" not in rule_ids(findings)

    def test_outside_serving_and_web_not_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/cache.py",
            _LOCKED_CLASS_HEADER + "    def bump(self):\n        self.hits += 1\n",
        )
        assert "lock-discipline" not in rule_ids(findings)

    def test_cluster_modules_are_in_scope(self, tmp_path):
        """The multiprocess layer shares the serving lock discipline."""
        findings = run_rules(
            tmp_path,
            "cluster/stagecache.py",
            _LOCKED_CLASS_HEADER + "    def bump(self):\n        self.hits += 1\n",
        )
        assert "lock-discipline" in rule_ids(findings)

    def test_cluster_locked_mutation_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "cluster/router.py",
            _LOCKED_CLASS_HEADER
            + "    def bump(self):\n"
            + "        with self._lock:\n"
            + "            self.hits += 1\n",
        )
        assert "lock-discipline" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/cache.py",
            _LOCKED_CLASS_HEADER
            + "    def bump(self):\n"
            + "        self.hits += 1  # repro: ignore[lock-discipline]\n",
        )
        assert "lock-discipline" not in rule_ids(findings)


class TestVectorizeRule:
    def test_flags_for_loop_over_array_field(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "def f(arrays):\n"
            "    total = 0.0\n"
            "    for value in arrays.explore_mass:\n"
            "        total += value\n"
            "    return total\n",
        )
        assert "vectorize" in rule_ids(findings)

    def test_flags_comprehension_over_tolist(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "def f(arrays):\n"
            "    return [c + 1 for c in arrays.result_counts.tolist()]\n",
        )
        assert "vectorize" in rule_ids(findings)

    def test_flags_enumerate_wrapper(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "def f(arrays):\n"
            "    out = {}\n"
            "    for i, node in enumerate(arrays.preorder_ids):\n"
            "        out[int(node)] = i\n"
            "    return out\n",
        )
        assert "vectorize" in rule_ids(findings)

    def test_whole_array_operations_are_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "import numpy as np\n"
            "def f(arrays, flat):\n"
            "    gathered = arrays.explore_mass[flat]\n"
            "    return float(np.sum(gathered))\n",
        )
        assert "vectorize" not in rule_ids(findings)

    def test_unrelated_attribute_loop_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "def f(plan):\n"
            "    return [step.cost for step in plan.steps]\n",
        )
        assert "vectorize" not in rule_ids(findings)

    def test_outside_core_not_flagged(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "analysis/mod.py",
            "def f(arrays):\n"
            "    return [v for v in arrays.explore_mass]\n",
        )
        assert "vectorize" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/mod.py",
            "def f(arrays):\n"
            "    total = 0.0\n"
            "    for v in arrays.explore_mass.tolist():  # repro: ignore[vectorize]\n"
            "        total += v\n"
            "    return total\n",
        )
        assert "vectorize" not in rule_ids(findings)

    def test_store_module_cold_path_loop_flagged(self, tmp_path):
        """substrate/store.py is in scope: mmap-column loops are cold-path."""
        findings = run_rules(
            tmp_path,
            "substrate/store.py",
            "class S:\n"
            "    def f(self):\n"
            "        return [int(p) for p in self._pmids]\n",
        )
        assert "vectorize" in rule_ids(findings)

    def test_navigation_tree_cold_path_loop_flagged(self, tmp_path):
        """core/navigation_tree.py embedded-tree buffers are in scope."""
        findings = run_rules(
            tmp_path,
            "core/navigation_tree.py",
            "class T:\n"
            "    def f(self):\n"
            "        out = []\n"
            "        for node in self._order.tolist():\n"
            "            out.append(node)\n"
            "        return out\n",
        )
        assert "vectorize" in rule_ids(findings)

    def test_other_substrate_module_not_in_scope(self, tmp_path):
        """Only store.py joins the scope — e.g. builder.py stays exempt."""
        findings = run_rules(
            tmp_path,
            "substrate/builder.py",
            "class B:\n"
            "    def f(self):\n"
            "        return [int(p) for p in self._pmids]\n",
        )
        assert "vectorize" not in rule_ids(findings)


class TestSolverViaRegistryRule:
    def test_flags_from_import_of_solver_module(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/runtime.py",
            "from repro.core.heuristic import HeuristicReducedOpt\n"
            "print(HeuristicReducedOpt)\n",
        )
        assert "solver-via-registry" in rule_ids(findings)

    def test_flags_plain_import_of_solver_module(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "workload/builder.py",
            "import repro.core.static_nav\nprint(repro.core.static_nav)\n",
        )
        assert "solver-via-registry" in rule_ids(findings)

    def test_flags_solver_module_via_core_package(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "workload/builder.py",
            "from repro.core import gopubmed\nprint(gopubmed)\n",
        )
        assert "solver-via-registry" in rule_ids(findings)

    def test_flags_relative_solver_import(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "src/repro/workload/builder.py",
            "from ..core.opt_edgecut import OptEdgeCut\nprint(OptEdgeCut)\n",
        )
        assert "solver-via-registry" in rule_ids(findings)

    def test_core_package_reexports_are_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/runtime.py",
            "from repro.core import NavigationTree\nprint(NavigationTree)\n",
        )
        assert "solver-via-registry" not in rule_ids(findings)

    def test_non_solver_core_modules_are_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/runtime.py",
            "from repro.core.navigation_tree import NavigationTree\n"
            "print(NavigationTree)\n",
        )
        assert "solver-via-registry" not in rule_ids(findings)

    def test_core_modules_may_import_each_other(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "core/exact.py",
            "from repro.core.opt_edgecut import OptEdgeCut\nprint(OptEdgeCut)\n",
        )
        assert "solver-via-registry" not in rule_ids(findings)

    def test_registry_module_is_exempt(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "pipeline/registry.py",
            "from repro.core.heuristic import HeuristicReducedOpt\n"
            "print(HeuristicReducedOpt)\n",
        )
        assert "solver-via-registry" not in rule_ids(findings)

    def test_tests_are_lint_only_and_exempt(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "tests/test_x.py",
            "from repro.core.heuristic import HeuristicReducedOpt\n"
            "print(HeuristicReducedOpt)\n",
        )
        assert "solver-via-registry" not in rule_ids(findings)

    def test_rewired_call_sites_are_clean_in_repo(self):
        findings, _, _, _ = analyze(
            paths=[
                "src/repro/bionav.py",
                "src/repro/cli.py",
                "src/repro/serving/runtime.py",
                "src/repro/workload/builder.py",
            ],
            baseline_path=REPO_ROOT / "tools" / "analyzer" / "no-baseline.json",
        )
        assert "solver-via-registry" not in rule_ids(findings)


class TestSubstrateBoundaryRule:
    def test_flags_from_import_of_tables_module(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "search/engine.py",
            "from repro.storage.tables import AssociationTable\n"
            "print(AssociationTable)\n",
        )
        assert "substrate-boundary" in rule_ids(findings)

    def test_flags_plain_import_of_index_module(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "serving/runtime.py",
            "import repro.storage.index\nprint(repro.storage.index)\n",
        )
        assert "substrate-boundary" in rule_ids(findings)

    def test_flags_module_via_storage_package(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "search/engine.py",
            "from repro.storage import tables\nprint(tables)\n",
        )
        assert "substrate-boundary" in rule_ids(findings)

    def test_flags_relative_storage_internal_import(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "src/repro/search/engine.py",
            "from ..storage.index import tokenize\nprint(tokenize)\n",
        )
        assert "substrate-boundary" in rule_ids(findings)

    def test_storage_package_reexports_are_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "search/engine.py",
            "from repro.storage import InvertedIndex, tokenize\n"
            "print(InvertedIndex, tokenize)\n",
        )
        assert "substrate-boundary" not in rule_ids(findings)

    def test_storage_database_module_is_clean(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "pipeline/stages.py",
            "from repro.storage.database import BioNavDatabase\n"
            "print(BioNavDatabase)\n",
        )
        assert "substrate-boundary" not in rule_ids(findings)

    def test_storage_substrate_and_corpus_are_exempt(self, tmp_path):
        for owner in ("storage/harvest.py", "substrate/store.py", "corpus/loader.py"):
            findings = run_rules(
                tmp_path,
                owner,
                "from repro.storage.tables import AssociationTable\n"
                "print(AssociationTable)\n",
            )
            assert "substrate-boundary" not in rule_ids(findings), owner

    def test_benchmarks_are_exempt(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "benchmarks/bench_tables.py",
            "from repro.storage.tables import AssociationTable\n"
            "print(AssociationTable)\n",
        )
        assert "substrate-boundary" not in rule_ids(findings)

    def test_tests_are_lint_only_and_exempt(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "tests/test_x.py",
            "from repro.storage.index import InvertedIndex\n"
            "print(InvertedIndex)\n",
        )
        assert "substrate-boundary" not in rule_ids(findings)

    def test_routed_layers_are_clean_in_repo(self):
        findings, _, _, _ = analyze(
            paths=[
                "src/repro/search/engine.py",
                "src/repro/search/ranking.py",
                "src/repro/search/suggest.py",
                "src/repro/serving/runtime.py",
                "src/repro/cluster/workers.py",
            ],
            baseline_path=REPO_ROOT / "tools" / "analyzer" / "no-baseline.json",
        )
        assert "substrate-boundary" not in rule_ids(findings)


class TestGenericRules:
    def test_mutable_default(self, tmp_path):
        findings = run_rules(tmp_path, "m.py", "def f(xs=[]):\n    return xs\n")
        assert "mutable-default" in rule_ids(findings)

    def test_immutable_default_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, "m.py", "def f(xs=()):\n    return xs\n")
        assert "mutable-default" not in rule_ids(findings)

    def test_shadowed_builtin_parameter(self, tmp_path):
        findings = run_rules(tmp_path, "m.py", "def f(list):\n    return list\n")
        assert "shadowed-builtin" in rule_ids(findings)

    def test_class_attribute_is_not_a_shadow(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "m.py",
            "class Rule:\n    id = 'x'\n    type: str = 'y'\n",
        )
        assert "shadowed-builtin" not in rule_ids(findings)

    def test_bare_except(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "m.py",
            "def f():\n    try:\n        pass\n    except:\n        pass\n",
        )
        assert "bare-except" in rule_ids(findings)

    def test_missing_hints_on_public_api(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "repro/m.py",
            "__all__ = ['f']\n\ndef f(x):\n    return x\n",
        )
        messages = [f.message for f in findings if f.rule == "missing-hints"]
        assert any("lacks a type hint" in m for m in messages)
        assert any("return type hint" in m for m in messages)

    def test_private_and_unexported_functions_unchecked(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "repro/m.py",
            "__all__ = ['f']\n\ndef f(x: int) -> int:\n    return x\n\ndef g(y):\n    return y\n",
        )
        assert "missing-hints" not in rule_ids(findings)


class TestImportRules:
    def test_unused_import(self, tmp_path):
        findings = run_rules(tmp_path, "m.py", "import os\n\nVALUE = 1\n")
        assert "unused-import" in rule_ids(findings)

    def test_used_import_is_clean(self, tmp_path):
        findings = run_rules(tmp_path, "m.py", "import os\n\nVALUE = os.sep\n")
        assert "unused-import" not in rule_ids(findings)

    def test_init_reexports_are_exempt(self, tmp_path):
        findings = run_rules(tmp_path, "pkg/__init__.py", "import os\n")
        assert "unused-import" not in rule_ids(findings)

    def test_duplicate_import(self, tmp_path):
        findings = run_rules(
            tmp_path, "m.py", "import os\nimport os\n\nVALUE = os.sep\n"
        )
        assert "duplicate-import" in rule_ids(findings)

    def test_star_import(self, tmp_path):
        findings = run_rules(tmp_path, "m.py", "from os.path import *\n")
        assert "star-import" in rule_ids(findings)

    def test_syntax_error_reported(self, tmp_path):
        findings = run_rules(tmp_path, "m.py", "def broken(:\n")
        assert "syntax-error" in rule_ids(findings)


class TestSuppressions:
    def test_wildcard_suppression(self, tmp_path):
        findings = run_rules(
            tmp_path, "m.py", "import os  # repro: ignore[*]\n\nVALUE = 1\n"
        )
        assert findings == []

    def test_suppression_is_rule_specific(self, tmp_path):
        findings = run_rules(
            tmp_path,
            "m.py",
            "import os  # repro: ignore[duplicate-import]\n\nVALUE = 1\n",
        )
        assert "unused-import" in rule_ids(findings)


class TestBaseline:
    def _analyze(self, target, baseline):
        return analyze(paths=[str(target)], baseline_path=baseline)

    def test_baselined_findings_do_not_fail(self, tmp_path):
        bad = tmp_path / "m.py"
        bad.write_text("import os\n\nVALUE = 1\n")
        baseline_file = tmp_path / "baseline.json"
        first, _, _, _ = self._analyze(bad, tmp_path / "missing.json")
        assert first
        write_baseline(baseline_file, first)
        fresh, _, baselined, stale = self._analyze(bad, baseline_file)
        assert fresh == []
        assert baselined == len(first)
        assert stale == []

    def test_new_findings_exceed_the_baseline(self, tmp_path):
        bad = tmp_path / "m.py"
        bad.write_text("import os\n\nVALUE = 1\n")
        baseline_file = tmp_path / "baseline.json"
        first, _, _, _ = self._analyze(bad, tmp_path / "missing.json")
        write_baseline(baseline_file, first)
        bad.write_text("import os\nimport json\n\nVALUE = 1\n")
        fresh, _, _, _ = self._analyze(bad, baseline_file)
        assert [f.message for f in fresh] == ["unused import 'json'"]

    def test_fixed_findings_become_stale_entries(self, tmp_path):
        bad = tmp_path / "m.py"
        bad.write_text("import os\n\nVALUE = 1\n")
        baseline_file = tmp_path / "baseline.json"
        first, _, _, _ = self._analyze(bad, tmp_path / "missing.json")
        write_baseline(baseline_file, first)
        bad.write_text("VALUE = 1\n")
        fresh, _, _, stale = self._analyze(bad, baseline_file)
        assert fresh == []
        assert len(stale) == 1

    def test_round_trip_and_version_check(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, [])
        assert load_baseline(baseline_file) == {}
        baseline_file.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(ValueError):
            load_baseline(baseline_file)

    def test_apply_baseline_counts_per_fingerprint(self):
        from tools.analyzer.core import Finding

        findings = [
            Finding("r", "p.py", line, "msg", "warning") for line in (1, 2, 3)
        ]
        fresh, stale = apply_baseline(findings, {findings[0].key: 2})
        assert [f.line for f in fresh] == [3]
        assert stale == []


class TestReporters:
    def test_text_report_lists_findings_and_summary(self):
        from tools.analyzer.core import Finding

        report = text_report(
            [Finding("unused-import", "m.py", 3, "unused import 'os'", "warning")],
            files_analyzed=1,
        )
        assert "m.py:3: [warning] unused-import: unused import 'os'" in report
        assert "1 finding(s)" in report

    def test_json_report_is_machine_readable(self):
        from tools.analyzer.core import Finding

        payload = json.loads(
            json_report(
                [Finding("determinism", "core/m.py", 7, "msg", "error")],
                files_analyzed=4,
                baselined=2,
            )
        )
        assert payload["files_analyzed"] == 4
        assert payload["baselined"] == 2
        assert payload["findings"][0]["rule"] == "determinism"
        assert payload["findings"][0]["line"] == 7


class TestAcceptanceFixtures:
    """The issue's gate: known-bad fixtures must fail ``main``."""

    def _main_exit(self, tmp_path, relpath, source):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        return main(
            [str(target), "--baseline", str(tmp_path / "empty-baseline.json")]
        )

    def test_unsorted_set_iteration_in_opt_edgecut_fails(self, tmp_path, capsys):
        status = self._main_exit(
            tmp_path,
            "core/opt_edgecut.py",
            "def f(xs):\n    return [x for x in set(xs)]\n",
        )
        assert status == 1
        assert "determinism" in capsys.readouterr().out

    def test_recursive_traversal_in_navigation_tree_fails(self, tmp_path, capsys):
        status = self._main_exit(
            tmp_path,
            "navigation_tree.py",
            "def walk(n):\n    return [walk(c) for c in n.children]\n",
        )
        assert status == 1
        assert "no-recursion" in capsys.readouterr().out

    def test_float_equality_in_cost_model_fails(self, tmp_path, capsys):
        status = self._main_exit(
            tmp_path,
            "cost_model.py",
            "def f(cost):\n    return cost == 1.0\n",
        )
        assert status == 1
        assert "float-equality" in capsys.readouterr().out

    def test_unlocked_mutation_in_serving_fails(self, tmp_path, capsys):
        status = self._main_exit(
            tmp_path,
            "serving/cache.py",
            _LOCKED_CLASS_HEADER + "    def bump(self):\n        self.hits += 1\n",
        )
        assert status == 1
        assert "lock-discipline" in capsys.readouterr().out

    def test_repo_head_is_clean(self):
        assert main([]) == 0

    def test_list_rules_exits_zero(self, capsys):
        assert main(["--list-rules"]) == 0
        assert "determinism" in capsys.readouterr().out


class TestLintShim:
    def test_cli_fails_on_known_bad_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import os\n\nVALUE = 1\n")
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "lint.py"), str(bad)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "unused import 'os'" in proc.stdout

    def test_cli_passes_on_clean_file(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("VALUE = 1\n")
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "lint.py"), str(good)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0

    def test_shim_skips_semantic_rules(self, tmp_path):
        from tools.lint import check_file

        target = tmp_path / "cost_model.py"
        target.write_text("def f(x):\n    return x == 0.0\n")
        assert check_file(target) == []

    def test_check_file_reports_tuples(self, tmp_path):
        from tools.lint import check_file

        target = tmp_path / "bad.py"
        target.write_text("import os\n\nVALUE = 1\n")
        findings = check_file(target)
        assert findings and findings[0][1] == 1
        assert "unused import 'os'" in findings[0][2]


def run_project(tmp_path, files, lint_only=False):
    """Write a multi-file fixture project and return its findings."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    findings, _, _, _ = analyze(
        paths=[str(tmp_path)],
        lint_only=lint_only,
        baseline_path=tmp_path / "no-baseline.json",
    )
    return findings


def findings_for(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestKeyDeterminismRule:
    def test_time_call_two_frames_below_root_flagged_with_chain(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "pipeline/artifacts.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def _stamp():\n"
                    "    return time.time()\n"
                    "\n"
                    "\n"
                    "def _mix(parts):\n"
                    "    return str(_stamp()) + str(parts)\n"
                    "\n"
                    "\n"
                    "def content_key(*parts):\n"
                    "    return _mix(parts)\n"
                )
            },
        )
        hits = findings_for(findings, "key-determinism")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert "time.time" in hits[0].message
        assert (
            "artifacts.content_key -> artifacts._mix -> artifacts._stamp"
            in hits[0].message
        )

    def test_cross_module_chain_flagged(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "src/repro/pipeline/stages.py": (
                    "from repro.util.hashing import digest_parts\n"
                    "\n"
                    "\n"
                    "def params_key(params):\n"
                    "    return digest_parts(params)\n"
                ),
                "src/repro/util/hashing.py": (
                    "import os\n"
                    "\n"
                    "\n"
                    "def digest_parts(parts):\n"
                    "    return os.environ.get('SALT', '') + str(sorted(parts))\n"
                ),
            },
        )
        hits = findings_for(findings, "key-determinism")
        assert len(hits) == 1
        assert "os.environ" in hits[0].message
        assert "stages.params_key -> hashing.digest_parts" in hits[0].message
        # The finding lands in the module containing the source.
        assert hits[0].path.endswith("hashing.py")

    def test_unseeded_random_flagged_seeded_generator_clean(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "bad_keys.py": (
                    "import random\n"
                    "\n"
                    "\n"
                    "def component_digest(component):\n"
                    "    return str(random.random()) + str(component)\n"
                ),
                "good_keys.py": (
                    "import random\n"
                    "\n"
                    "\n"
                    "def compute_key(seed, parts):\n"
                    "    rng = random.Random(seed)\n"
                    "    return str(sorted(parts))\n"
                ),
            },
        )
        hits = findings_for(findings, "key-determinism")
        assert len(hits) == 1
        assert hits[0].path.endswith("bad_keys.py")
        assert "random.random" in hits[0].message

    def test_clean_hashlib_key_passes(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "keys.py": (
                    "import hashlib\n"
                    "\n"
                    "\n"
                    "def content_key(*parts):\n"
                    "    hasher = hashlib.sha256()\n"
                    "    for part in sorted(str(p) for p in parts):\n"
                    "        hasher.update(part.encode())\n"
                    "    return hasher.hexdigest()\n"
                )
            },
        )
        assert findings_for(findings, "key-determinism") == []

    def test_dynamic_call_in_closure_degrades_to_warning(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "dyn.py": (
                    "HANDLERS = {}\n"
                    "\n"
                    "\n"
                    "def compute_key(kind, payload):\n"
                    "    return HANDLERS[kind](payload)\n"
                )
            },
        )
        hits = findings_for(findings, "key-determinism")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert "cannot be proven deterministic" in hits[0].message

    def test_suppression_at_sink_line(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "keys.py": (
                    "import time\n"
                    "\n"
                    "\n"
                    "def content_key(parts):\n"
                    "    stamp = time.time()  # repro: ignore[key-determinism]\n"
                    "    return str(parts)\n"
                )
            },
        )
        assert findings_for(findings, "key-determinism") == []


_CACHE_CLASS = (
    "import threading\n"
    "\n"
    "\n"
    "class Cache:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._data = {}\n"
    "        self._put_locked('seed', 0)\n"
    "\n"
    "    def _put_locked(self, key, value):\n"
    "        self._data[key] = value\n"
    "\n"
    "    def _evict_locked(self):\n"
    "        self._put_locked('evicted', 1)\n"
    "\n"
)


class TestLockChainRule:
    def test_bare_call_to_locked_helper_flagged(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "serving/cache.py": _CACHE_CLASS
                + "    def put(self, key, value):\n"
                "        self._put_locked(key, value)\n"
            },
        )
        hits = findings_for(findings, "lock-chain")
        assert len(hits) == 1
        assert "'self._put_locked'" in hits[0].message
        assert "with self._lock:" in hits[0].message

    def test_call_under_lock_and_from_locked_helper_clean(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "serving/cache.py": _CACHE_CLASS
                + "    def put(self, key, value):\n"
                "        with self._lock:\n"
                "            self._put_locked(key, value)\n"
            },
        )
        # __init__ and _evict_locked callers are clean by construction.
        assert findings_for(findings, "lock-chain") == []

    def test_cluster_modules_are_in_lock_chain_scope(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "cluster/supervisor.py": _CACHE_CLASS
                + "    def put(self, key, value):\n"
                "        self._put_locked(key, value)\n"
            },
        )
        hits = findings_for(findings, "lock-chain")
        assert len(hits) == 1
        assert "'self._put_locked'" in hits[0].message

    def test_cross_object_call_requires_receivers_lock(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "serving/ops.py": (
                    "def bad(cache, key):\n"
                    "    cache._put_locked(key, None)\n"
                    "\n"
                    "\n"
                    "def good(cache, key):\n"
                    "    with cache._lock:\n"
                    "        cache._put_locked(key, None)\n"
                )
            },
        )
        hits = findings_for(findings, "lock-chain")
        assert len(hits) == 1
        assert hits[0].line == 2
        assert "'cache._put_locked'" in hits[0].message

    def test_wrong_receivers_lock_does_not_satisfy(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "serving/ops.py": (
                    "def confused(self, other):\n"
                    "    with self._lock:\n"
                    "        other._put_locked('k', None)\n"
                )
            },
        )
        assert len(findings_for(findings, "lock-chain")) == 1

    def test_checkout_context_manager_counts_as_lock(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "serving/runtime.py": (
                    "class Runtime:\n"
                    "    def view(self, sid):\n"
                    "        with self.sessions.checkout(sid) as entry:\n"
                    "            return self._view_locked(sid, entry)\n"
                    "\n"
                    "    def _view_locked(self, sid, entry):\n"
                    "        return entry\n"
                )
            },
        )
        assert findings_for(findings, "lock-chain") == []

    def test_outside_locking_layers_not_checked(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "core/free.py": (
                    "def loose(cache):\n"
                    "    cache._put_locked('k', None)\n"
                )
            },
        )
        assert findings_for(findings, "lock-chain") == []

    def test_suppression_at_call_line(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "serving/boot.py": (
                    "def warm(cache):\n"
                    "    cache._put_locked('k', 1)  # repro: ignore[lock-chain]\n"
                )
            },
        )
        assert findings_for(findings, "lock-chain") == []


class TestSubstrateImmutabilityRule:
    def test_inplace_and_numpy_mutations_flagged(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "pipeline/mut.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "def tweak(arrays, adjustment):\n"
                    "    arrays.explore_mass += adjustment\n"
                    "    arrays.result_counts[0] = 7\n"
                    "    np.add.at(arrays.explore_mass, [0], 1.0)\n"
                    "    arrays.log_lt.sort()\n"
                )
            },
        )
        hits = findings_for(findings, "substrate-immutability")
        assert len(hits) == 4
        assert all(h.severity == "error" for h in hits)
        messages = " | ".join(h.message for h in hits)
        assert "explore_mass" in messages
        assert "result_counts" in messages
        assert "'.sort()'" in messages

    def test_builder_methods_exempt(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "core/cost_arrays.py": (
                    "import numpy as np\n"
                    "\n"
                    "\n"
                    "class CostArrays:\n"
                    "    def __init__(self, counts):\n"
                    "        self.result_counts = np.asarray(counts)\n"
                    "        self.explore_mass = self.result_counts * 2.0\n"
                    "        self.explore_mass += 1.0\n"
                    "\n"
                    "    def _build_packed(self):\n"
                    "        self._packed = np.zeros(4)\n"
                    "        self._packed[0] = 1\n"
                    "        return self._packed\n"
                )
            },
        )
        assert findings_for(findings, "substrate-immutability") == []

    def test_builder_exemption_is_self_only(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "core/wrap.py": (
                    "class Wrapper:\n"
                    "    def __init__(self, arrays):\n"
                    "        arrays.explore_mass[0] = 0.0\n"
                    "        self.arrays = arrays\n"
                )
            },
        )
        assert len(findings_for(findings, "substrate-immutability")) == 1

    def test_object_setattr_outside_artifacts_flagged(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "pipeline/patch.py": (
                    "def retag(nav, query):\n"
                    "    object.__setattr__(nav, 'query', query)\n"
                )
            },
        )
        hits = findings_for(findings, "substrate-immutability")
        assert len(hits) == 1
        assert "__setattr__" in hits[0].message

    def test_artifact_annotated_receiver_assignment_flagged(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "pipeline/use.py": (
                    "def relabel(nav: 'NavTreeArtifact', query):\n"
                    "    nav.query = query\n"
                )
            },
        )
        hits = findings_for(findings, "substrate-immutability")
        assert len(hits) == 1
        assert "NavTreeArtifact" in hits[0].message

    def test_decision_store_subscript_write_is_legal(self, tmp_path):
        findings = run_project(
            tmp_path,
            {
                "pipeline/use.py": (
                    "def record(nav: 'NavTreeArtifact', node, choice):\n"
                    "    nav.decisions[node] = choice\n"
                )
            },
        )
        assert findings_for(findings, "substrate-immutability") == []

    def test_runtime_arrays_are_frozen(self):
        if str(REPO_ROOT / "src") not in sys.path:
            sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.core.cost_arrays import CostArrays
        from repro.core.navigation_tree import NavigationTree
        from repro.hierarchy.concept import ConceptHierarchy

        hierarchy = ConceptHierarchy(root_label="root")
        child = hierarchy.add_child(0, "child")
        tree = NavigationTree.build(hierarchy, {child: {1, 2, 3}})
        arrays = CostArrays(tree, lambda n: 10)
        with pytest.raises(ValueError):
            arrays.explore_mass[0] = 99.0
        with pytest.raises(ValueError):
            arrays.packed_results[0, 0] = 1


class TestInterproceduralCLI:
    def _write(self, tmp_path, relpath, source):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        return target

    BAD_LOCK = (
        "class Cache:\n"
        "    def put(self, key):\n"
        "        self._put_locked(key)\n"
        "\n"
        "    def _put_locked(self, key):\n"
        "        self.key = key\n"
    )

    def test_write_baseline_refuses_interprocedural_findings(
        self, tmp_path, capsys
    ):
        self._write(tmp_path, "serving/cache.py", self.BAD_LOCK)
        baseline = tmp_path / "baseline.json"
        status = main(
            [str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        )
        assert status == 1
        assert not baseline.exists()
        err = capsys.readouterr().err
        assert "refusing to baseline" in err
        assert "lock-chain" in err

    def test_write_baseline_force_overrides(self, tmp_path):
        self._write(tmp_path, "serving/cache.py", self.BAD_LOCK)
        baseline = tmp_path / "baseline.json"
        status = main(
            [
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--write-baseline",
                "--force",
            ]
        )
        assert status == 0
        assert any(
            key.startswith("lock-chain::") for key in load_baseline(baseline)
        )

    def test_baseline_ratchet_blocks_growth(self, tmp_path, capsys, monkeypatch):
        from tools.analyzer import runner

        target = self._write(tmp_path, "mod.py", "VALUE = 1\n")
        baseline = tmp_path / "baseline.json"
        from tools.analyzer.core import Finding

        write_baseline(
            baseline, [Finding("unused-import", "m.py", 1, "msg", "warning")]
        )
        monkeypatch.setattr(runner, "_committed_baseline_total", lambda path: 0)
        status = main([str(target), "--baseline", str(baseline)])
        assert status == 1
        assert "baseline ratchet" in capsys.readouterr().err

    def test_baseline_ratchet_escape_hatch(
        self, tmp_path, capsys, monkeypatch
    ):
        from tools.analyzer import runner

        target = self._write(tmp_path, "mod.py", "VALUE = 1\n")
        baseline = tmp_path / "baseline.json"
        from tools.analyzer.core import Finding

        write_baseline(
            baseline, [Finding("unused-import", "m.py", 1, "msg", "warning")]
        )
        monkeypatch.setattr(runner, "_committed_baseline_total", lambda path: 0)
        monkeypatch.setenv("ANALYZE_ALLOW_BASELINE_GROWTH", "1")
        assert main([str(target), "--baseline", str(baseline)]) == 0

    def test_shrinking_baseline_passes_ratchet(self, tmp_path, monkeypatch):
        from tools.analyzer import runner

        target = self._write(tmp_path, "mod.py", "VALUE = 1\n")
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [])
        monkeypatch.setattr(runner, "_committed_baseline_total", lambda path: 5)
        assert main([str(target), "--baseline", str(baseline)]) == 0

    def test_wall_time_gate(self, tmp_path, capsys):
        target = self._write(tmp_path, "mod.py", "VALUE = 1\n")
        args = [str(target), "--baseline", str(tmp_path / "nb.json")]
        assert main(args + ["--max-seconds", "60"]) == 0
        assert main(args + ["--max-seconds", "0"]) == 1
        assert "exceeds" in capsys.readouterr().err

    def test_wall_time_always_reported(self, tmp_path, capsys):
        target = self._write(tmp_path, "mod.py", "VALUE = 1\n")
        main([str(target), "--baseline", str(tmp_path / "nb.json")])
        assert "analyze: wall time" in capsys.readouterr().err

    def test_sarif_output_file(self, tmp_path):
        self._write(tmp_path, "serving/cache.py", self.BAD_LOCK)
        out = tmp_path / "report.sarif"
        status = main(
            [
                str(tmp_path),
                "--baseline",
                str(tmp_path / "nb.json"),
                "--format",
                "sarif",
                "--output",
                str(out),
            ]
        )
        assert status == 1
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"key-determinism", "lock-chain", "substrate-immutability"} <= rule_ids
        results = run["results"]
        assert any(r["ruleId"] == "lock-chain" for r in results)
        assert all(
            r["locations"][0]["physicalLocation"]["region"]["startLine"] >= 1
            for r in results
        )


class TestSarifReporter:
    def test_sarif_levels_and_locations(self):
        from tools.analyzer.core import Finding
        from tools.analyzer.reporters import sarif_report

        payload = json.loads(
            sarif_report(
                [
                    Finding("determinism", "core/m.py", 7, "msg", "error"),
                    Finding("unused-import", "m.py", 0, "msg2", "warning"),
                ],
                files_analyzed=2,
            )
        )
        results = payload["runs"][0]["results"]
        assert [r["level"] for r in results] == ["error", "warning"]
        # Line 0 findings (whole-file) clamp to SARIF's 1-based minimum.
        assert results[1]["locations"][0]["physicalLocation"]["region"][
            "startLine"
        ] == 1
