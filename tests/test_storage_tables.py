"""Unit tests for repro.storage.tables."""

from __future__ import annotations

import pytest

from repro.storage.tables import (
    AssociationTable,
    ConceptStatsTable,
    DenormalizedCitationTable,
)


@pytest.fixture()
def table() -> AssociationTable:
    t = AssociationTable()
    t.insert_many([(1, 100), (1, 101), (2, 100), (3, 102)])
    return t


class TestAssociationTable:
    def test_insert_counts_new_tuples(self):
        t = AssociationTable()
        assert t.insert(1, 100)
        assert not t.insert(1, 100)  # duplicate tuple
        assert len(t) == 1

    def test_insert_many_returns_new_count(self):
        t = AssociationTable()
        assert t.insert_many([(1, 100), (1, 100), (2, 100)]) == 2

    def test_citations_for(self, table):
        assert table.citations_for(1) == frozenset({100, 101})
        assert table.citations_for(99) == frozenset()

    def test_concepts_for(self, table):
        assert table.concepts_for(100) == frozenset({1, 2})
        assert table.concepts_for(999) == frozenset()

    def test_concepts_listing(self, table):
        assert table.concepts() == [1, 2, 3]

    def test_iter_rows_sorted(self, table):
        assert list(table.iter_rows()) == [
            (1, 100),
            (1, 101),
            (2, 100),
            (3, 102),
        ]

    def test_denormalize(self, table):
        denorm = table.denormalize()
        assert denorm.get(100) == (1, 2)
        assert denorm.get(101) == (1,)
        assert len(denorm) == 3


class TestDenormalizedTable:
    def test_put_get(self):
        t = DenormalizedCitationTable()
        t.put(7, [3, 1, 2])
        assert t.get(7) == (3, 1, 2)
        assert 7 in t

    def test_get_missing_raises(self):
        t = DenormalizedCitationTable()
        with pytest.raises(KeyError):
            t.get(1)

    def test_get_many_skips_missing(self):
        t = DenormalizedCitationTable()
        t.put(1, [5])
        assert t.get_many([1, 2]) == {1: (5,)}

    def test_pmids_sorted(self):
        t = DenormalizedCitationTable()
        t.put(9, [1])
        t.put(3, [1])
        assert t.pmids() == [3, 9]


class TestConceptStats:
    def test_set_and_count(self):
        t = ConceptStatsTable()
        t.set_count(4, 1000)
        assert t.count(4) == 1000
        assert t.count(5) == 0
        assert len(t) == 1

    def test_negative_rejected(self):
        t = ConceptStatsTable()
        with pytest.raises(ValueError):
            t.set_count(4, -1)

    def test_items_sorted(self):
        t = ConceptStatsTable()
        t.set_count(9, 1)
        t.set_count(2, 3)
        assert list(t.items()) == [(2, 3), (9, 1)]
