"""Unit tests for the simulated Entrez eutils client."""

from __future__ import annotations

import pytest

from repro.corpus.citation import Citation, DocSummary
from repro.corpus.medline import MedlineDatabase
from repro.eutils.client import EntrezClient
from repro.eutils.errors import BadRequestError, RateLimitExceeded, UnknownIdError


@pytest.fixture()
def medline() -> MedlineDatabase:
    db = MedlineDatabase()
    for pmid in range(1, 26):
        db.add(
            Citation(
                pmid=pmid,
                title="prothymosin study %d" % pmid,
                authors=("Author %d." % pmid,),
                year=1990 + pmid % 10,
            )
        )
    db.add(Citation(pmid=100, title="something else entirely"))
    return db


@pytest.fixture()
def client(medline) -> EntrezClient:
    return EntrezClient(medline)


class TestESearch:
    def test_returns_count_and_first_page(self, client):
        result = client.esearch("prothymosin")
        assert result.count == 25
        assert len(result.ids) == 20  # default retmax

    def test_paging(self, client):
        first = client.esearch("prothymosin", retstart=0, retmax=10)
        second = client.esearch("prothymosin", retstart=10, retmax=10)
        third = client.esearch("prothymosin", retstart=20, retmax=10)
        assert len(first.ids) == 10
        assert len(second.ids) == 10
        assert len(third.ids) == 5
        all_ids = first.ids + second.ids + third.ids
        assert len(set(all_ids)) == 25

    def test_esearch_all_collects_every_id(self, client):
        ids = client.esearch_all("prothymosin", page_size=7)
        assert len(ids) == 25
        assert len(set(ids)) == 25

    def test_no_results(self, client):
        result = client.esearch("histones")
        assert result.count == 0
        assert result.ids == ()

    def test_empty_term_rejected(self, client):
        with pytest.raises(BadRequestError):
            client.esearch("   ")

    def test_negative_retstart_rejected(self, client):
        with pytest.raises(BadRequestError):
            client.esearch("prothymosin", retstart=-1)

    def test_huge_retmax_rejected(self, client):
        with pytest.raises(BadRequestError):
            client.esearch("prothymosin", retmax=1_000_000)


class TestESummaryEFetch:
    def test_esummary_returns_display_records(self, client):
        summaries = client.esummary([1, 2])
        assert all(isinstance(s, DocSummary) for s in summaries)
        assert summaries[0].pmid == 1
        assert "prothymosin" in summaries[0].title

    def test_esummary_unknown_id(self, client):
        with pytest.raises(UnknownIdError):
            client.esummary([1, 99999])

    def test_esummary_empty_rejected(self, client):
        with pytest.raises(BadRequestError):
            client.esummary([])

    def test_efetch_returns_full_citations(self, client):
        citations = client.efetch([5])
        assert isinstance(citations[0], Citation)
        assert citations[0].pmid == 5

    def test_efetch_unknown_id(self, client):
        with pytest.raises(UnknownIdError):
            client.efetch([424242])


class TestELink:
    def test_related_ranked_by_shared_concepts(self):
        db = MedlineDatabase()
        db.add(Citation(pmid=1, title="anchor", mesh_annotations=(1, 2, 3), index_concepts=(1, 2, 3)))
        db.add(Citation(pmid=2, title="close", mesh_annotations=(1, 2), index_concepts=(1, 2)))
        db.add(Citation(pmid=3, title="far", mesh_annotations=(3,), index_concepts=(3,)))
        db.add(Citation(pmid=4, title="unrelated", mesh_annotations=(9,), index_concepts=(9,)))
        client = EntrezClient(db)
        related = client.elink_related(1)
        assert related == [2, 3]

    def test_excludes_self(self, client):
        db = MedlineDatabase()
        db.add(Citation(pmid=1, title="a", mesh_annotations=(1,), index_concepts=(1,)))
        db.add(Citation(pmid=2, title="b", mesh_annotations=(1,), index_concepts=(1,)))
        local = EntrezClient(db)
        assert 1 not in local.elink_related(1)

    def test_retmax_truncates(self):
        db = MedlineDatabase()
        for pmid in range(1, 12):
            db.add(Citation(pmid=pmid, title="t", mesh_annotations=(5,), index_concepts=(5,)))
        client = EntrezClient(db)
        assert len(client.elink_related(1, retmax=4)) == 4

    def test_unknown_pmid(self, client):
        with pytest.raises(UnknownIdError):
            client.elink_related(424242)

    def test_no_concepts_no_neighbors(self, client):
        # Fixture citations carry no concepts.
        assert client.elink_related(1) == []

    def test_total_requests_survives_quota_reset(self, medline):
        client = EntrezClient(medline, rate_limit=1)
        client.esearch("prothymosin")
        client.reset_quota()
        client.esearch("prothymosin")
        assert client.requests_served == 1
        assert client.total_requests == 2


class TestRateLimiting:
    def test_quota_enforced(self, medline):
        client = EntrezClient(medline, rate_limit=2)
        client.esearch("prothymosin")
        client.esummary([1])
        with pytest.raises(RateLimitExceeded):
            client.efetch([1])

    def test_reset_quota(self, medline):
        client = EntrezClient(medline, rate_limit=1)
        client.esearch("prothymosin")
        client.reset_quota()
        client.esearch("prothymosin")  # does not raise
        assert client.requests_served == 1

    def test_requests_served_counter(self, client):
        client.esearch("prothymosin")
        client.esearch("prothymosin")
        assert client.requests_served == 2
