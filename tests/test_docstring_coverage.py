"""Quality gate: every public API item carries a docstring.

The deliverables require doc comments on every public item; rather than
trusting review, this test walks every ``repro`` module's ``__all__`` and
fails on any public class, function, or public method missing one.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro


def iter_public_objects():
    for info in [None] + list(pkgutil.walk_packages(repro.__path__, prefix="repro.")):
        name = "repro" if info is None else info.name
        if name.endswith("__main__"):
            continue
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", ()):
            obj = getattr(module, symbol, None)
            if obj is None or not callable(obj):
                continue
            home = getattr(obj, "__module__", name)
            if home != name:
                continue  # documented where it is defined
            yield name, symbol, obj


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not inspect.getdoc(module):
                missing.append(info.name)
        assert not missing, "modules without docstrings: %s" % missing

    def test_every_public_callable_has_a_docstring(self):
        missing = []
        for module_name, symbol, obj in iter_public_objects():
            if not inspect.getdoc(obj):
                missing.append("%s.%s" % (module_name, symbol))
        assert not missing, "undocumented public items: %s" % missing

    def test_every_public_method_has_a_docstring(self):
        missing = []
        for module_name, symbol, obj in iter_public_objects():
            if not inspect.isclass(obj):
                continue
            for method_name, member in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if isinstance(member, (staticmethod, classmethod)):
                    member = member.__func__
                if isinstance(member, property):
                    member = member.fget
                if not callable(member):
                    continue
                if not inspect.getdoc(member):
                    missing.append("%s.%s.%s" % (module_name, symbol, method_name))
        assert not missing, "undocumented public methods: %s" % missing
