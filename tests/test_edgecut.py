"""Unit tests for repro.core.edgecut."""

from __future__ import annotations

import pytest

from repro.core.edgecut import (
    component_children,
    component_edges,
    cut_components,
    is_valid_edgecut,
)
from repro.core.navigation_tree import NavigationTree
from repro.hierarchy.concept import ConceptHierarchy


@pytest.fixture()
def tree() -> NavigationTree:
    # root(0) -> a(1) -> b(2) -> c(3)
    #                 -> d(4)
    #         -> e(5)
    h = ConceptHierarchy(root_label="root")
    a = h.add_child(0, "a")
    b = h.add_child(a, "b")
    h.add_child(b, "c")
    h.add_child(a, "d")
    h.add_child(0, "e")
    annotations = {n: {n * 10} for n in range(1, 6)}
    return NavigationTree.build(h, annotations)


@pytest.fixture()
def full_component(tree):
    return frozenset(tree.iter_dfs())


class TestComponentHelpers:
    def test_component_edges_full(self, tree, full_component):
        edges = set(component_edges(tree, full_component))
        assert edges == {(0, 1), (1, 2), (2, 3), (1, 4), (0, 5)}

    def test_component_edges_restricted(self, tree):
        component = frozenset({1, 2, 4})
        assert set(component_edges(tree, component)) == {(1, 2), (1, 4)}

    def test_component_children(self, tree, full_component):
        assert component_children(tree, full_component, 1) == [2, 4]
        assert component_children(tree, frozenset({1, 4}), 1) == [4]


class TestValidity:
    def test_valid_single_edge(self, tree, full_component):
        assert is_valid_edgecut(tree, full_component, [(1, 2)])

    def test_valid_sibling_edges(self, tree, full_component):
        assert is_valid_edgecut(tree, full_component, [(1, 2), (1, 4)])

    def test_invalid_same_path(self, tree, full_component):
        # (0,1) and (1,2) lie on the root→c path.
        assert not is_valid_edgecut(tree, full_component, [(0, 1), (1, 2)])
        assert not is_valid_edgecut(tree, full_component, [(1, 2), (2, 3)])

    def test_invalid_edge_outside_component(self, tree):
        component = frozenset({1, 2, 3})
        assert not is_valid_edgecut(tree, component, [(1, 4)])

    def test_invalid_non_edge(self, tree, full_component):
        assert not is_valid_edgecut(tree, full_component, [(0, 3)])

    def test_duplicate_edge_invalid(self, tree, full_component):
        assert not is_valid_edgecut(tree, full_component, [(1, 2), (1, 2)])

    def test_empty_cut_is_valid(self, tree, full_component):
        assert is_valid_edgecut(tree, full_component, [])


class TestCutComponents:
    def test_basic_cut(self, tree, full_component):
        upper, lowers = cut_components(tree, full_component, 0, [(1, 2)])
        assert upper == frozenset({0, 1, 4, 5})
        assert lowers == {2: frozenset({2, 3})}

    def test_multi_edge_cut(self, tree, full_component):
        upper, lowers = cut_components(tree, full_component, 0, [(1, 2), (0, 5)])
        assert upper == frozenset({0, 1, 4})
        assert lowers[2] == frozenset({2, 3})
        assert lowers[5] == frozenset({5})

    def test_components_partition_the_component(self, tree, full_component):
        upper, lowers = cut_components(tree, full_component, 0, [(1, 2), (1, 4)])
        pieces = [upper] + list(lowers.values())
        union = frozenset().union(*pieces)
        assert union == full_component
        assert sum(len(p) for p in pieces) == len(full_component)

    def test_cut_within_sub_component(self, tree):
        component = frozenset({1, 2, 3, 4})
        upper, lowers = cut_components(tree, component, 1, [(2, 3)])
        assert upper == frozenset({1, 2, 4})
        assert lowers == {3: frozenset({3})}

    def test_invalid_cut_raises(self, tree, full_component):
        with pytest.raises(ValueError):
            cut_components(tree, full_component, 0, [(0, 1), (1, 2)])
