"""Property-based suite for the roaring citation-ordinal bitmaps.

Hypothesis drives the container machinery against a plain Python-set
oracle: membership, cardinality, union/intersection, serialization
round-trips (including through an on-disk uint8 memmap, the exact shape
``MmapStore`` deserializes from), and array↔bitmap threshold crossings
with deliberately tiny ``array_max`` values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_arrays import POPCOUNT_TABLE
from repro.substrate.roaring import (
    ARRAY_CONTAINER_MAX,
    BITMAP_CONTAINER_BYTES,
    RoaringBitmap,
)

# Ordinals spanning several 2^16 chunks, so multi-container bitmaps are
# routinely generated; small array_max values force threshold crossings.
ordinal_sets = st.sets(st.integers(min_value=0, max_value=1 << 18), max_size=300)
small_array_max = st.integers(min_value=1, max_value=16)


def from_set(values, array_max=ARRAY_CONTAINER_MAX):
    return RoaringBitmap.from_values(values, array_max=array_max) if values else (
        RoaringBitmap.from_sorted(np.empty(0, dtype=np.uint32), array_max=array_max)
    )


class TestOracle:
    @given(ordinal_sets, small_array_max)
    @settings(max_examples=60, deadline=None)
    def test_membership_and_cardinality(self, values, array_max):
        bitmap = from_set(values, array_max)
        assert len(bitmap) == len(values)
        assert set(bitmap.to_array().tolist()) == values
        for probe in list(values)[:10]:
            assert probe in bitmap
        missing = max(values) + 1 if values else 0
        assert missing not in bitmap

    @given(ordinal_sets, ordinal_sets, small_array_max)
    @settings(max_examples=60, deadline=None)
    def test_union_and_intersection_match_sets(self, a, b, array_max):
        ba, bb = from_set(a, array_max), from_set(b, array_max)
        assert set(ba.union(bb).to_array().tolist()) == (a | b)
        assert set(ba.intersect(bb).to_array().tolist()) == (a & b)

    @given(ordinal_sets, ordinal_sets)
    @settings(max_examples=40, deadline=None)
    def test_union_is_commutative_and_canonical(self, a, b):
        ba, bb = from_set(a), from_set(b)
        assert ba.union(bb) == bb.union(ba)

    @given(ordinal_sets, small_array_max)
    @settings(max_examples=60, deadline=None)
    def test_threshold_crossing_stays_canonical(self, values, array_max):
        bitmap = from_set(values, array_max)
        # Canonical form: array containers hold at most array_max values,
        # bitmap containers strictly more.
        for key, payload in zip(bitmap._keys, bitmap._payloads):
            if payload.dtype == np.uint16:
                assert payload.size <= array_max
            else:
                assert int(POPCOUNT_TABLE[payload].sum()) > array_max
        # Same values built at the classic threshold agree as sets.
        assert set(bitmap.to_array().tolist()) == values


class TestSerialization:
    @given(ordinal_sets, small_array_max)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_equality(self, values, array_max):
        bitmap = from_set(values, array_max)
        data = bitmap.serialize()
        assert len(data) == bitmap.byte_size()
        back = RoaringBitmap.deserialize(data, array_max=array_max, length=len(data))
        assert back == bitmap
        assert set(back.to_array().tolist()) == values

    @given(a=ordinal_sets, b=ordinal_sets, array_max=small_array_max)
    @settings(max_examples=30, deadline=None)
    def test_mmap_round_trip(self, a, b, array_max, tmp_path_factory):
        # Two bitmaps concatenated into one blob file, reopened as a
        # read-only memmap and deserialized by (offset, length) — the
        # MmapStore access pattern.
        tmp_path = tmp_path_factory.mktemp("blob")
        ba, bb = from_set(a, array_max), from_set(b, array_max)
        blob = ba.serialize() + bb.serialize()
        path = tmp_path / "blob.npy"
        np.save(path, np.frombuffer(blob, dtype=np.uint8))
        view = np.load(path, mmap_mode="r")
        first = RoaringBitmap.deserialize(
            view, offset=0, array_max=array_max, length=ba.byte_size()
        )
        second = RoaringBitmap.deserialize(
            view, offset=ba.byte_size(), array_max=array_max, length=bb.byte_size()
        )
        assert first == ba
        assert second == bb

    def test_length_mismatch_rejected(self):
        bitmap = from_set({1, 2, 3})
        data = bitmap.serialize()
        with pytest.raises(ValueError):
            RoaringBitmap.deserialize(data, length=len(data) + 4)

    def test_deterministic_bytes(self):
        values = set(range(0, 9000, 2)) | {70_000, 70_001}
        assert from_set(values).serialize() == from_set(values).serialize()


class TestPackedInterop:
    @given(ordinal_sets)
    @settings(max_examples=40, deadline=None)
    def test_to_packed_matches_cost_arrays_layout(self, values):
        universe = (max(values) + 1) if values else 8
        row = from_set(values).to_packed(universe)
        assert row.dtype == np.uint8
        assert row.size == (universe + 7) >> 3
        assert int(POPCOUNT_TABLE[row].sum()) == len(values)
        bits = np.unpackbits(row)[:universe]
        assert set(np.flatnonzero(bits).tolist()) == values

    def test_dense_chunk_copies_whole_container(self):
        values = set(range(0, 6000))  # > ARRAY_CONTAINER_MAX: bitmap container
        bitmap = from_set(values)
        assert bitmap.container_kinds == ("bitmap",)
        row = bitmap.to_packed(1 << 16)
        assert row.size == BITMAP_CONTAINER_BYTES
        assert int(POPCOUNT_TABLE[row].sum()) == len(values)

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError):
            from_set({100}).to_packed(50)


class TestIntersectMany:
    def test_smallest_first_and_empty_short_circuit(self):
        a = from_set(set(range(100)))
        b = from_set(set(range(50, 150)))
        c = from_set({60, 61})
        out = RoaringBitmap.intersect_many([a, b, c])
        assert set(out.to_array().tolist()) == {60, 61}
        assert not RoaringBitmap.intersect_many([a, from_set(set())])

    def test_requires_input(self):
        with pytest.raises(ValueError):
            RoaringBitmap.intersect_many([])
