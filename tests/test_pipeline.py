"""The staged navigation pipeline: artifacts, keys, caching, strategies.

Covers the refactor's load-bearing claims: content keys are
deterministic and chain down the dataflow, the hierarchy snapshot is
shared across queries, navigation trees are shared across sessions of a
query, cut plans are replayed across sessions, the active-tree stage is
deliberately uncached, and a pipeline-routed strategy is observationally
identical to the bare registry-built solver.
"""

from __future__ import annotations

import pytest

from repro.pipeline.artifacts import component_digest, content_key
from repro.pipeline.cache import StageCache
from repro.pipeline.pipeline import NavigationPipeline, PipelineStrategy
from repro.pipeline.stages import (
    ALL_STAGES,
    ActiveTreeStage,
    CutStage,
    HierarchyStage,
    NavTreeStage,
    SearchStage,
    params_key,
)
from repro.core.cost_model import CostParams


@pytest.fixture()
def pipeline(small_workload) -> NavigationPipeline:
    """A fresh pipeline (private cache) over the session-scoped workload."""
    return NavigationPipeline(small_workload.database, small_workload.entrez)


class TestContentKeys:
    def test_content_key_is_deterministic_40_hex(self):
        key = content_key("a", "b")
        assert key == content_key("a", "b")
        assert len(key) == 40
        assert int(key, 16) >= 0

    def test_content_key_sensitive_to_parts_and_order(self):
        assert content_key("a", "b") != content_key("b", "a")
        assert content_key("ab") != content_key("a", "b")

    def test_component_digest_is_order_insensitive(self):
        assert component_digest([3, 1, 2]) == component_digest((2, 3, 1))
        assert component_digest([1, 2]) != component_digest([1, 2, 3])

    def test_params_key_tracks_unit_costs(self):
        assert params_key(CostParams()) == params_key(CostParams())
        assert params_key(CostParams()) != params_key(CostParams(expand_cost=2.0))

    def test_keys_chain_down_the_dataflow(self, pipeline):
        snapshot = pipeline.snapshot()
        first = pipeline.results("prothymosin")
        second = pipeline.results("varenicline")
        assert first.content_key != second.content_key
        assert NavTreeStage.key(snapshot, first) != NavTreeStage.key(snapshot, second)
        # Same inputs -> same key, on every stage of the chain.
        assert SearchStage.key(snapshot, "prothymosin") == first.content_key
        assert pipeline.nav_tree("prothymosin").content_key == NavTreeStage.key(
            snapshot, first
        )

    def test_cut_keys_separate_solvers_and_components(self, pipeline):
        nav = pipeline.nav_tree("prothymosin")
        cost = params_key(pipeline.params)
        base = CutStage.key(nav, "heuristic", cost, {0, 1}, 0)
        assert base == CutStage.key(nav, "heuristic", cost, {1, 0}, 0)
        assert base != CutStage.key(nav, "static_nav", cost, {0, 1}, 0)
        assert base != CutStage.key(nav, "heuristic", cost, {0, 1, 2}, 0)


class TestStageSharing:
    def test_hierarchy_snapshot_shared_across_queries(self, pipeline):
        first = pipeline.snapshot()
        pipeline.results("prothymosin")
        pipeline.results("varenicline")
        assert pipeline.snapshot() is first
        stats = pipeline.stage_stats()[HierarchyStage.name]
        assert stats["misses"] == 1
        assert stats["hits"] >= 2
        assert stats["builds"] == 1

    def test_nav_tree_shared_across_sessions_of_a_query(self, pipeline):
        one = pipeline.open_session("prothymosin")
        two = pipeline.open_session("prothymosin")
        assert one.nav is two.nav
        assert one.session is not two.session
        assert pipeline.stage_stats()[NavTreeStage.name]["builds"] == 1

    def test_distinct_queries_get_distinct_trees(self, pipeline):
        first = pipeline.nav_tree("prothymosin")
        second = pipeline.nav_tree("varenicline")
        assert first is not second
        assert first.content_key != second.content_key
        assert pipeline.stage_stats()[NavTreeStage.name]["builds"] == 2

    def test_active_tree_stage_is_uncached_but_timed(self, pipeline):
        nav = pipeline.nav_tree("prothymosin")
        one = pipeline.activate(nav)
        two = pipeline.activate(nav)
        assert one.content_key != two.content_key  # per-activation ordinal
        stats = pipeline.stage_stats()[ActiveTreeStage.name]
        assert stats["runs"] == 2
        assert "hits" not in stats  # no cache behind the stage
        assert not ActiveTreeStage.cached

    def test_cut_plans_replay_across_sessions(self, pipeline):
        first = pipeline.open_session("prothymosin")
        second = pipeline.open_session("prothymosin")
        root = first.nav.tree.root
        outcome_one = first.session.expand(root)
        before = pipeline.stage_stats()[CutStage.name]
        outcome_two = second.session.expand(root)
        after = pipeline.stage_stats()[CutStage.name]
        assert outcome_one.revealed == outcome_two.revealed
        assert after["hits"] >= before["hits"] + 1
        assert after["builds"] == before["builds"]

    def test_shared_cache_shares_artifacts_across_pipelines(self, small_workload):
        cache = StageCache()
        a = NavigationPipeline(small_workload.database, small_workload.entrez, cache=cache)
        b = NavigationPipeline(small_workload.database, small_workload.entrez, cache=cache)
        assert a.nav_tree("prothymosin") is b.nav_tree("prothymosin")

    def test_stage_stats_covers_the_whole_dataflow(self, pipeline):
        pipeline.open_session("prothymosin").session.expand(
            pipeline.nav_tree("prothymosin").tree.root
        )
        stats = pipeline.stage_stats()
        for stage in ALL_STAGES:
            assert stage.name in stats
        for name in (HierarchyStage.name, NavTreeStage.name, CutStage.name):
            assert stats[name]["build_seconds_total"] >= 0.0

    def test_cached_trees_lists_nav_artifacts(self, pipeline):
        nav = pipeline.nav_tree("prothymosin")
        assert pipeline.cached_trees() == [nav]


class TestPipelineStrategy:
    def test_wrapper_presents_as_the_inner_solver(self, pipeline):
        nav = pipeline.nav_tree("prothymosin")
        strategy = pipeline.strategy(nav, "static")
        assert isinstance(strategy, PipelineStrategy)
        assert strategy.solver == "static_nav"
        assert strategy.name == strategy.inner.name
        assert strategy.capabilities is strategy.inner.capabilities

    def test_equivalent_to_bare_registry_solver(self, pipeline):
        nav = pipeline.nav_tree("prothymosin")
        wrapped = pipeline.strategy(nav, "heuristic")
        bare = pipeline.registry.create(
            "heuristic",
            nav.tree,
            nav.probs,
            params=pipeline.params,
            max_reduced_nodes=pipeline.max_reduced_nodes,
        )
        component = frozenset(nav.tree.iter_dfs())
        root = nav.tree.root
        assert wrapped.best_cut(component, root).cut == bare.best_cut(component, root).cut

    def test_repeat_best_cut_hits_the_cut_cache(self, pipeline):
        nav = pipeline.nav_tree("prothymosin")
        strategy = pipeline.strategy(nav, "heuristic")
        component = frozenset(nav.tree.iter_dfs())
        first = strategy.best_cut(component, nav.tree.root)
        stats = pipeline.stage_stats()[CutStage.name]
        assert stats["builds"] == 1
        second = strategy.best_cut(component, nav.tree.root)
        assert second == first
        stats = pipeline.stage_stats()[CutStage.name]
        assert stats["builds"] == 1
        assert stats["hits"] == 1

    def test_unknown_solver_rejected(self, pipeline):
        nav = pipeline.nav_tree("prothymosin")
        with pytest.raises(ValueError):
            pipeline.strategy(nav, "magic")
        with pytest.raises(ValueError):
            pipeline.open_session("prothymosin", solver="magic")
