"""Property-based tests for the parsers, formats, and caches."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.citation import Citation
from repro.corpus.loader import dump_medline_text, load_medline_text
from repro.hierarchy.generator import generate_hierarchy
from repro.hierarchy.mesh_loader import dump_mesh_ascii, load_mesh_ascii
from repro.search.query_language import And, Not, Or, Term, format_query, parse_query
from repro.storage.cache import LRUCache


# ---------------------------------------------------------------------------
# Query language: parse/format round trip
# ---------------------------------------------------------------------------
_word = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789+-/", min_size=1, max_size=10
).filter(lambda w: w.upper() not in ("AND", "OR", "NOT") and w.strip("-"))

_phrase_text = st.lists(_word, min_size=1, max_size=3).map(" ".join)


@st.composite
def query_asts(draw, depth: int = 3):
    if depth == 0 or draw(st.booleans()):
        phrase = draw(st.booleans())
        text = draw(_phrase_text) if phrase else draw(_word)
        field = draw(st.sampled_from(["all", "ti", "ab", "mh"]))
        return Term(text=text, field=field, phrase=phrase)
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(query_asts(depth=depth - 1)))
    left = draw(query_asts(depth=depth - 1))
    right = draw(query_asts(depth=depth - 1))
    return And(left, right) if kind == "and" else Or(left, right)


class TestQueryRoundTrip:
    @given(query_asts())
    @settings(max_examples=150, deadline=None)
    def test_parse_format_round_trip(self, ast):
        assert parse_query(format_query(ast)) == ast

    @given(query_asts())
    @settings(max_examples=80, deadline=None)
    def test_format_is_stable(self, ast):
        rendered = format_query(ast)
        assert format_query(parse_query(rendered)) == rendered


# ---------------------------------------------------------------------------
# MEDLINE text round trip
# ---------------------------------------------------------------------------
_title_text = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12),
    min_size=1,
    max_size=12,
).map(" ".join)


@st.composite
def citation_lists(draw):
    n = draw(st.integers(1, 5))
    citations = []
    for i in range(n):
        citations.append(
            Citation(
                pmid=i + 1,
                title=draw(_title_text),
                abstract=draw(_title_text),
                authors=tuple(draw(st.lists(_title_text, max_size=3))),
                year=draw(st.integers(1900, 2008)),
            )
        )
    return citations


class TestMedlineRoundTrip:
    @given(citation_lists())
    @settings(max_examples=50, deadline=None)
    def test_dump_load_preserves_content(self, citations):
        buffer = io.StringIO()
        dump_medline_text(citations, buffer)
        reloaded = load_medline_text(io.StringIO(buffer.getvalue()))
        assert len(reloaded) == len(citations)
        for original, back in zip(citations, reloaded):
            assert back.pmid == original.pmid
            assert back.title.split() == original.title.split()
            assert back.abstract.split() == original.abstract.split()
            assert back.year == original.year


# ---------------------------------------------------------------------------
# MeSH ASCII round trip on random hierarchies
# ---------------------------------------------------------------------------
class TestMeshAsciiRoundTrip:
    @given(st.integers(5, 60), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_structure_preserved(self, size, seed):
        original = generate_hierarchy(target_size=size, seed=seed)
        buffer = io.StringIO()
        dump_mesh_ascii(original, buffer)
        reloaded = load_mesh_ascii(io.StringIO(buffer.getvalue()))
        assert len(reloaded) == len(original)
        original_edges = sorted(
            (original.uid(n), original.uid(original.parent(n)))
            for n in range(1, len(original))
        )
        reloaded_edges = sorted(
            (reloaded.uid(n), reloaded.uid(reloaded.parent(n)))
            for n in range(1, len(reloaded))
        )
        assert original_edges == reloaded_edges


# ---------------------------------------------------------------------------
# LRU cache invariants
# ---------------------------------------------------------------------------
@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestLRUProperties:
    @given(
        st.integers(1, 5),
        st.lists(
            st.tuples(st.sampled_from("abcdefgh"), st.integers(0, 100)), max_size=60
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded_and_last_put_present(self, capacity, operations):
        cache: LRUCache = LRUCache(capacity)
        for key, value in operations:
            cache.put(key, value)
            assert len(cache) <= capacity
            assert cache.get(key) == value

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_stats_add_up(self, keys):
        cache: LRUCache = LRUCache(2)
        lookups = 0
        for key in keys:
            cache.get(key)
            lookups += 1
            cache.put(key, 1)
        assert cache.hits + cache.misses == lookups
