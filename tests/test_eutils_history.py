"""Unit tests for the Entrez history-server simulation."""

from __future__ import annotations

import pytest

from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.eutils.errors import BadRequestError
from repro.eutils.history import HistoryEntrezClient, HistoryKey, HistoryServer


@pytest.fixture()
def medline() -> MedlineDatabase:
    db = MedlineDatabase()
    for pmid in range(1, 31):
        db.add(Citation(pmid=pmid, title="histone study %d" % pmid))
    return db


@pytest.fixture()
def client(medline) -> HistoryEntrezClient:
    return HistoryEntrezClient(medline)


class TestHistoryServer:
    def test_store_and_fetch(self):
        server = HistoryServer()
        key = server.store(None, "histone", [1, 2, 3])
        assert server.fetch(key) == (1, 2, 3)
        assert server.query_of(key) == "histone"

    def test_query_keys_increment_within_session(self):
        server = HistoryServer()
        first = server.store(None, "a", [1])
        second = server.store(first.webenv, "b", [2])
        assert first.webenv == second.webenv
        assert (first.query_key, second.query_key) == (1, 2)
        assert server.fetch(second) == (2,)

    def test_separate_sessions_get_distinct_webenvs(self):
        server = HistoryServer()
        a = server.store(None, "a", [1])
        b = server.store(None, "b", [2])
        assert a.webenv != b.webenv

    def test_unknown_webenv_rejected(self):
        server = HistoryServer()
        with pytest.raises(BadRequestError):
            server.fetch(HistoryKey(webenv="NOPE", query_key=1))
        with pytest.raises(BadRequestError):
            server.store("NOPE", "a", [1])

    def test_query_key_out_of_range(self):
        server = HistoryServer()
        key = server.store(None, "a", [1])
        with pytest.raises(BadRequestError):
            server.fetch(HistoryKey(webenv=key.webenv, query_key=2))


class TestUseHistoryWorkflow:
    def test_esearch_usehistory(self, client):
        key, count = client.esearch_usehistory("histone")
        assert count == 30
        assert client.history.fetch(key)  # stored server-side

    def test_esummary_paging_by_reference(self, client):
        key, count = client.esearch_usehistory("histone")
        first = client.esummary_page(key, retstart=0, retmax=10)
        second = client.esummary_page(key, retstart=10, retmax=10)
        assert len(first) == len(second) == 10
        assert {s.pmid for s in first}.isdisjoint({s.pmid for s in second})

    def test_efetch_page(self, client):
        key, _ = client.esearch_usehistory("histone")
        page = client.efetch_page(key, retstart=25, retmax=10)
        assert len(page) == 5
        assert all(isinstance(c, Citation) for c in page)

    def test_page_past_end_is_empty(self, client):
        key, _ = client.esearch_usehistory("histone")
        assert client.esummary_page(key, retstart=100, retmax=10) == []

    def test_negative_paging_rejected(self, client):
        key, _ = client.esearch_usehistory("histone")
        with pytest.raises(BadRequestError):
            client.esummary_page(key, retstart=-1)

    def test_iterate_summaries_covers_all(self, client):
        key, count = client.esearch_usehistory("histone")
        pmids = [s.pmid for s in client.iterate_summaries(key, page_size=7)]
        assert len(pmids) == count
        assert len(set(pmids)) == count

    def test_appending_to_existing_session(self, client):
        key1, _ = client.esearch_usehistory("histone")
        key2, _ = client.esearch_usehistory("study", webenv=key1.webenv)
        assert key2.webenv == key1.webenv
        assert key2.query_key == 2
