"""Unit tests for hierarchy shape statistics."""

from __future__ import annotations

import pytest

from repro.hierarchy.concept import ConceptHierarchy
from repro.hierarchy.generator import generate_hierarchy
from repro.hierarchy.stats import branching_histogram, level_widths, shape_stats


@pytest.fixture()
def small() -> ConceptHierarchy:
    h = ConceptHierarchy(root_label="root")
    a = h.add_child(0, "a")
    b = h.add_child(0, "b")
    h.add_child(a, "c")
    h.add_child(a, "d")
    h.add_child(a, "e")
    return h


class TestLevelWidths:
    def test_counts_per_level(self, small):
        assert level_widths(small) == {0: 1, 1: 2, 2: 3}

    def test_single_node(self):
        assert level_widths(ConceptHierarchy()) == {0: 1}


class TestBranchingHistogram:
    def test_histogram(self, small):
        # root has 2 children, a has 3, b/c/d/e are leaves.
        assert branching_histogram(small) == {2: 1, 3: 1, 0: 4}


class TestShapeStats:
    def test_small_hierarchy(self, small):
        stats = shape_stats(small)
        assert stats.size == 6
        assert stats.height == 2
        assert stats.root_fanout == 2
        assert stats.max_width == 3
        assert stats.widest_level == 2
        assert stats.leaf_fraction == pytest.approx(4 / 6)
        assert stats.mean_branching == pytest.approx(2.5)
        assert stats.max_branching == 3

    def test_generator_reproduces_mesh_silhouette(self):
        """The DESIGN.md shape claims, checked against the generator."""
        stats = shape_stats(generate_hierarchy(target_size=3000, seed=5))
        # Bushy top: the root has many children.
        assert stats.root_fanout >= 20
        # Deep enough for multi-step navigations.
        assert stats.height >= 5
        # Long-tailed branching with a realistic leaf share.
        assert 0.4 <= stats.leaf_fraction <= 0.9
        assert stats.max_branching >= 2 * stats.mean_branching

    def test_widest_level_is_not_root(self):
        stats = shape_stats(generate_hierarchy(target_size=2000, seed=6))
        assert stats.widest_level >= 1
