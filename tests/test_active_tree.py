"""Unit tests for repro.core.active_tree."""

from __future__ import annotations

import pytest

from repro.core.active_tree import ActiveTree
from repro.core.navigation_tree import NavigationTree
from repro.hierarchy.concept import ConceptHierarchy


@pytest.fixture()
def tree() -> NavigationTree:
    # Mirrors the paper's Fig. 3 component:
    # BP(1) -> CP(2) -> CD(3) -> {Auto(4), Apo(5), Necr(6)}
    #               -> CGP(7) -> Prolif(8) -> Div(9)
    h = ConceptHierarchy(root_label="MeSH")
    bp = h.add_child(0, "Biological Phenomena")
    cp = h.add_child(bp, "Cell Physiology")
    cd = h.add_child(cp, "Cell Death")
    h.add_child(cd, "Autophagy")
    h.add_child(cd, "Apoptosis")
    h.add_child(cd, "Necrosis")
    cgp = h.add_child(cp, "Cell Growth Processes")
    prolif = h.add_child(cgp, "Cell Proliferation")
    h.add_child(prolif, "Cell Division")
    annotations = {
        1: {100},
        2: {101},
        3: {1, 2},
        4: {3},
        5: set(range(10, 45)),
        6: {4, 5},
        7: set(range(50, 60)),
        8: set(range(50, 60)),
        9: set(range(52, 58)),
    }
    return NavigationTree.build(h, annotations)


@pytest.fixture()
def active(tree) -> ActiveTree:
    return ActiveTree(tree)


class TestInitialState:
    def test_single_component_holds_everything(self, active, tree):
        assert active.component(tree.root) == frozenset(tree.iter_dfs())

    def test_only_root_visible(self, active, tree):
        assert active.visible_nodes() == [tree.root]

    def test_root_is_expandable(self, active, tree):
        assert active.is_expandable(tree.root)

    def test_hidden_component_lookup_raises(self, active):
        with pytest.raises(KeyError):
            active.component(5)

    def test_component_count_is_distinct_citations(self, active, tree):
        assert active.component_count(tree.root) == len(tree.all_results())

    def test_singleton_tree_has_no_components(self):
        h = ConceptHierarchy()
        lone = NavigationTree.build(h, {})
        single = ActiveTree(lone)
        assert not single.is_expandable(lone.root)
        assert single.component(lone.root) == frozenset({lone.root})


class TestExpand:
    def test_fig3_edgecut(self, active, tree):
        # The paper's Fig. 3 cut: (Cell Physiology, Cell Death) and
        # (Cell Growth Processes, Cell Proliferation).
        roots = active.expand(0, [(2, 3), (7, 8)])
        assert roots == [0, 3, 8]
        assert active.is_visible(3)
        assert active.is_visible(8)
        assert not active.is_visible(2)  # Cell Physiology stays hidden
        assert not active.is_visible(7)  # Cell Growth Processes hidden

    def test_components_after_cut(self, active):
        active.expand(0, [(2, 3), (7, 8)])
        assert active.component(3) == frozenset({3, 4, 5, 6})
        assert active.component(8) == frozenset({8, 9})
        assert active.component(0) == frozenset({0, 1, 2, 7})

    def test_counts_shrink_after_expansion(self, active, tree):
        # Fig. 2b→2c: the upper component count drops as concepts reveal.
        before = active.component_count(0)
        active.expand(0, [(2, 3), (7, 8)])
        after = active.component_count(0)
        assert after < before

    def test_empty_cut_rejected(self, active):
        with pytest.raises(ValueError):
            active.expand(0, [])

    def test_expand_non_component_rejected(self, active):
        with pytest.raises(ValueError):
            active.expand(5, [(5, 9)])

    def test_expand_with_invalid_cut_rejected(self, active):
        with pytest.raises(ValueError):
            active.expand(0, [(0, 1), (1, 2)])

    def test_singleton_results_removed_from_components(self, active):
        # Cutting everything below node 3 leaves singletons, which are not
        # tracked as components.
        active.expand(0, [(2, 3)])
        active.expand(3, [(3, 4), (3, 5), (3, 6)])
        assert not active.is_expandable(4)
        assert not active.is_expandable(5)
        assert active.component(4) == frozenset({4})

    def test_expand_on_upper_component(self, active):
        # Fig. 5: after the first cut, the upper subtree can be expanded
        # again, revealing Cell Growth Processes.
        active.expand(0, [(2, 3), (7, 8)])
        roots = active.expand(0, [(2, 7)])
        assert roots == [0, 7]
        assert active.is_visible(7)

    def test_containing_root(self, active):
        active.expand(0, [(2, 3), (7, 8)])
        assert active.containing_root(5) == 3
        assert active.containing_root(9) == 8
        assert active.containing_root(2) == 0
        assert active.containing_root(3) == 3  # visible → itself


class TestBacktrack:
    def test_backtrack_restores_previous_state(self, active, tree):
        initial_visible = set(active.visible_nodes())
        active.expand(0, [(2, 3)])
        assert active.backtrack()
        assert set(active.visible_nodes()) == initial_visible
        assert active.component(tree.root) == frozenset(tree.iter_dfs())

    def test_backtrack_at_initial_state_returns_false(self, active):
        assert not active.backtrack()

    def test_backtrack_is_stackable(self, active):
        active.expand(0, [(2, 3), (7, 8)])
        active.expand(3, [(3, 5)])
        assert active.expansions_performed == 2
        active.backtrack()
        assert active.is_visible(3)
        assert not active.is_visible(5)
        active.backtrack()
        assert not active.is_visible(3)


class TestVisualization:
    def test_initial_visualization_is_root_only(self, active, tree):
        rows = active.visualize()
        assert len(rows) == 1
        assert rows[0].node == tree.root
        assert rows[0].expandable

    def test_visualization_after_fig3_cut(self, active, tree):
        active.expand(0, [(2, 3), (7, 8)])
        rows = active.visualize()
        labels = [r.label for r in rows]
        assert labels == ["MeSH", "Cell Death", "Cell Proliferation"]
        by_label = {r.label: r for r in rows}
        # Lower roots hang off the visible root (their real parents are hidden).
        assert by_label["Cell Death"].parent == tree.root
        assert by_label["Cell Death"].depth == 1
        assert by_label["Cell Death"].count == 40  # {1,2}∪{3}∪(10..44)∪{4,5}
        assert by_label["Cell Proliferation"].count == 10

    def test_upper_expansion_re_parents_revealed_nodes(self, active):
        # Fig. 5b: Cell Growth Processes becomes the parent of the
        # previously revealed Cell Proliferation.
        active.expand(0, [(2, 3), (7, 8)])
        active.expand(0, [(2, 7)])
        rows = {r.label: r for r in active.visualize()}
        assert rows["Cell Proliferation"].parent == rows["Cell Growth Processes"].node

    def test_non_expandable_rows_have_no_hyperlink(self, active):
        active.expand(0, [(2, 3)])
        active.expand(3, [(3, 4), (3, 5), (3, 6)])
        rows = {r.label: r for r in active.visualize()}
        assert not rows["Autophagy"].expandable
        assert rows["MeSH"].expandable
