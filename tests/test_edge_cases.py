"""Adversarial structural edge cases across the core machinery."""

from __future__ import annotations

import pytest

from repro.core.active_tree import ActiveTree
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.simulator import navigate_to_target
from repro.core.static_nav import StaticNavigation
from repro.hierarchy.concept import ConceptHierarchy


def flat_counts(node: int) -> int:
    return 100


@pytest.fixture()
def deep_chain_tree():
    """A 300-deep annotated chain — stresses anything recursive."""
    h = ConceptHierarchy()
    parent = 0
    for i in range(300):
        parent = h.add_child(parent, "level %d" % i)
    annotations = {n: {n} for n in range(1, len(h))}
    return h, NavigationTree.build(h, annotations)


@pytest.fixture()
def wide_star_tree():
    """A 400-child star — stresses anything quadratic in fanout."""
    h = ConceptHierarchy()
    for i in range(400):
        h.add_child(0, "leaf %d" % i)
    annotations = {n: {n, 1000 + (n % 7)} for n in range(1, len(h))}
    return h, NavigationTree.build(h, annotations)


class TestDeepChain:
    def test_embedding_survives_depth(self, deep_chain_tree):
        _, tree = deep_chain_tree
        assert tree.size() == 301
        assert tree.height() == 300

    def test_static_navigation_to_bottom(self, deep_chain_tree):
        h, tree = deep_chain_tree
        target = len(h) - 1
        outcome = navigate_to_target(
            tree, StaticNavigation(tree), target, show_results=False, max_steps=350
        )
        assert outcome.reached
        assert outcome.expand_actions == 300

    def test_heuristic_navigation_to_bottom_is_cheaper_in_expands(self, deep_chain_tree):
        h, tree = deep_chain_tree
        probs = ProbabilityModel(tree, flat_counts)
        target = len(h) - 1
        outcome = navigate_to_target(
            tree,
            HeuristicReducedOpt(tree, probs),
            target,
            show_results=False,
            max_steps=400,
        )
        assert outcome.reached
        # EdgeCuts skip levels; far fewer clicks than one per level.
        assert outcome.expand_actions < 300

    def test_visualization_depth_bounded_by_visible_tree(self, deep_chain_tree):
        _, tree = deep_chain_tree
        active = ActiveTree(tree)
        deepest = max(n for n in tree.iter_dfs())
        # Reveal the deepest node directly: visible depth stays tiny.
        active.expand(tree.root, [(tree.parent(deepest), deepest)])
        rows = active.visualize()
        assert max(r.depth for r in rows) <= 2


class TestWideStar:
    def test_static_root_expansion_reveals_everything(self, wide_star_tree):
        _, tree = wide_star_tree
        active = ActiveTree(tree)
        decision = StaticNavigation(tree).choose_cut(active, tree.root)
        assert len(decision.cut) == 400

    def test_heuristic_reveals_few(self, wide_star_tree):
        _, tree = wide_star_tree
        probs = ProbabilityModel(tree, flat_counts)
        strategy = HeuristicReducedOpt(tree, probs)
        decision = strategy.best_cut(frozenset(tree.iter_dfs()), tree.root)
        assert 1 <= len(decision.cut) <= 10

    def test_partitioning_respects_cap_on_stars(self, wide_star_tree):
        _, tree = wide_star_tree
        probs = ProbabilityModel(tree, flat_counts)
        strategy = HeuristicReducedOpt(tree, probs, max_reduced_nodes=10)
        decision = strategy.best_cut(frozenset(tree.iter_dfs()), tree.root)
        assert decision.reduced_size <= 10


class TestDegenerateResults:
    def test_single_citation_corpus(self):
        h = ConceptHierarchy()
        a = h.add_child(0, "only")
        tree = NavigationTree.build(h, {a: {42}})
        probs = ProbabilityModel(tree, flat_counts)
        outcome = navigate_to_target(tree, HeuristicReducedOpt(tree, probs), a)
        assert outcome.reached
        assert outcome.citations_displayed == 1

    def test_every_node_same_citation(self):
        """Total duplication: all concepts hold the identical citation."""
        h = ConceptHierarchy()
        nodes = [h.add_child(0, "n%d" % i) for i in range(5)]
        for n in nodes[:3]:
            h.add_child(n, "c%d" % n)
        annotations = {n: {7} for n in range(1, len(h))}
        tree = NavigationTree.build(h, annotations)
        probs = ProbabilityModel(tree, flat_counts)
        outcome = navigate_to_target(
            tree, HeuristicReducedOpt(tree, probs), nodes[0], show_results=False
        )
        assert outcome.reached

    def test_duplicate_free_tree(self):
        """Zero duplication: every concept holds distinct citations."""
        h = ConceptHierarchy()
        a = h.add_child(0, "a")
        b = h.add_child(a, "b")
        c = h.add_child(a, "c")
        tree = NavigationTree.build(h, {a: {1}, b: {2}, c: {3}})
        assert tree.citations_with_duplicates() == len(tree.all_results())
        probs = ProbabilityModel(tree, flat_counts)
        decision = HeuristicReducedOpt(tree, probs).best_cut(
            frozenset(tree.iter_dfs()), tree.root
        )
        assert decision.cut
