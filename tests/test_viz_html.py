"""Unit tests for the HTML export of navigation state."""

from __future__ import annotations

import pytest

from repro.core.active_tree import ActiveTree
from repro.core.relevance import ranked_visualization
from repro.core.static_nav import StaticNavigation
from repro.viz.html import active_tree_to_html, navigation_tree_to_html, rows_to_html


@pytest.fixture()
def expanded_active(fragment_tree):
    active = ActiveTree(fragment_tree)
    strategy = StaticNavigation(fragment_tree)
    decision = strategy.best_cut(active.component(fragment_tree.root), fragment_tree.root)
    active.expand(fragment_tree.root, decision.cut)
    return active


class TestActiveTreeHtml:
    def test_page_structure(self, expanded_active):
        page = active_tree_to_html(expanded_active, title="Test & Title")
        assert page.startswith("<!DOCTYPE html>")
        assert "<title>Test &amp; Title</title>" in page
        assert page.count("<ul") == page.count("</ul>")

    def test_counts_and_expand_marks(self, expanded_active, fragment_tree):
        page = active_tree_to_html(expanded_active)
        assert "MeSH" in page
        assert "&gt;&gt;&gt;" in page  # some component is still expandable
        root_count = len(fragment_tree.results(fragment_tree.root)) or "("
        assert 'class="count"' in page

    def test_highlight_marks_rows(self, expanded_active, fragment_tree):
        child = fragment_tree.children(fragment_tree.root)[0]
        page = active_tree_to_html(expanded_active, highlight=[child])
        assert 'class="highlight"' in page

    def test_labels_are_escaped(self, expanded_active):
        # No raw angle brackets from labels can appear un-escaped; inject a
        # hostile label via rows_to_html directly.
        from repro.core.active_tree import VisNode

        rows = [
            VisNode(
                node=1,
                label="<script>alert(1)</script>",
                count=3,
                expandable=False,
                depth=0,
                parent=-1,
            )
        ]
        markup = rows_to_html(rows)
        assert "<script>" not in markup
        assert "&lt;script&gt;" in markup

    def test_accepts_ranked_rows(self, expanded_active, fragment_probs):
        rows = ranked_visualization(expanded_active, fragment_probs)
        page = active_tree_to_html(expanded_active, rows=rows)
        assert "bionav" in page


class TestNavigationTreeHtml:
    def test_full_tree_export(self, fragment_tree):
        page = navigation_tree_to_html(fragment_tree)
        for node in fragment_tree.nodes():
            assert fragment_tree.label(node).split(",")[0] in page

    def test_counts_are_subtree_counts(self, fragment_tree, fragment_hierarchy):
        page = navigation_tree_to_html(fragment_tree)
        apoptosis = fragment_hierarchy.by_label("Apoptosis")
        count = len(fragment_tree.subtree_results(apoptosis))
        assert "Apoptosis</span> <span class=\"count\">(%d)" % count in page

    def test_no_expand_links_in_static_export(self, fragment_tree):
        page = navigation_tree_to_html(fragment_tree)
        assert "&gt;&gt;&gt;" not in page
