"""Unit tests for the PubMed-style query language parser."""

from __future__ import annotations

import pytest

from repro.search.query_language import (
    And,
    Not,
    Or,
    QuerySyntaxError,
    Term,
    parse_query,
)


class TestTerms:
    def test_single_word(self):
        assert parse_query("prothymosin") == Term("prothymosin")

    def test_quoted_phrase(self):
        node = parse_query('"cell proliferation"')
        assert node == Term("cell proliferation", phrase=True)

    def test_field_tags(self):
        assert parse_query("apoptosis[mh]") == Term("apoptosis", field="mh")
        assert parse_query("cancer[ti]") == Term("cancer", field="ti")
        assert parse_query("kinase[ab]") == Term("kinase", field="ab")
        assert parse_query("x[all]") == Term("x", field="all")

    def test_field_tag_on_phrase(self):
        node = parse_query('"cell death"[mh]')
        assert node == Term("cell death", field="mh", phrase=True)

    def test_field_tags_case_insensitive(self):
        assert parse_query("apoptosis[MH]") == Term("apoptosis", field="mh")

    def test_unknown_field_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("apoptosis[xyz]")

    def test_transporter_names_survive(self):
        assert parse_query("Na+/I- symporter") == And(
            Term("Na+/I-"), Term("symporter")
        )


class TestBooleans:
    def test_explicit_and(self):
        assert parse_query("a AND b") == And(Term("a"), Term("b"))

    def test_juxtaposition_is_and(self):
        assert parse_query("a b c") == And(And(Term("a"), Term("b")), Term("c"))

    def test_or(self):
        assert parse_query("a OR b") == Or(Term("a"), Term("b"))

    def test_and_binds_tighter_than_or(self):
        node = parse_query("a OR b AND c")
        assert node == Or(Term("a"), And(Term("b"), Term("c")))

    def test_parentheses_override(self):
        node = parse_query("(a OR b) AND c")
        assert node == And(Or(Term("a"), Term("b")), Term("c"))

    def test_not(self):
        assert parse_query("NOT a") == Not(Term("a"))
        assert parse_query("a NOT b") == And(Term("a"), Not(Term("b")))

    def test_nested_not(self):
        assert parse_query("NOT NOT a") == Not(Not(Term("a")))

    def test_operators_case_insensitive(self):
        assert parse_query("a and b") == And(Term("a"), Term("b"))
        assert parse_query("a or b") == Or(Term("a"), Term("b"))

    def test_complex_query(self):
        node = parse_query('prothymosin AND (apoptosis[mh] OR "cell death") NOT review[ti]')
        assert isinstance(node, And)
        assert isinstance(node.right, Not)
        assert node.right.operand == Term("review", field="ti")


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("")
        with pytest.raises(QuerySyntaxError):
            parse_query("   ")

    def test_unbalanced_parens(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("(a OR b")
        with pytest.raises(QuerySyntaxError):
            parse_query("a OR b)")

    def test_dangling_operator(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("a AND")
        with pytest.raises(QuerySyntaxError):
            parse_query("OR a")

    def test_empty_phrase(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('""')
