"""Unit tests for repro.core.heuristic (Heuristic-ReducedOpt)."""

from __future__ import annotations

import pytest

from repro.core.active_tree import ActiveTree
from repro.core.edgecut import is_valid_edgecut
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.opt_edgecut import CutTree, OptEdgeCut
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.generator import generate_hierarchy


@pytest.fixture()
def big_tree():
    """A navigation tree well above the reduction threshold."""
    h = generate_hierarchy(target_size=300, seed=21)
    annotations = {}
    for i, node in enumerate(range(1, len(h))):
        if i % 2 == 0:
            annotations[node] = set(range(i % 40, i % 40 + 5))
    return NavigationTree.build(h, annotations)


@pytest.fixture()
def big_probs(big_tree):
    return ProbabilityModel(big_tree, lambda n: 500)


class TestReduction:
    def test_reduced_tree_respects_limit(self, big_tree, big_probs):
        strategy = HeuristicReducedOpt(big_tree, big_probs, max_reduced_nodes=10)
        component = frozenset(big_tree.iter_dfs())
        reduced, part_roots = strategy._reduce(component, big_tree.root)
        assert 2 <= len(reduced) <= 10
        assert len(part_roots) == len(reduced)

    def test_supernodes_partition_the_component(self, big_tree, big_probs):
        strategy = HeuristicReducedOpt(big_tree, big_probs, max_reduced_nodes=8)
        component = frozenset(big_tree.iter_dfs())
        reduced, _ = strategy._reduce(component, big_tree.root)
        members = [m for payload in reduced.payload for m in payload]
        assert sorted(members) == sorted(component)

    def test_supernode_results_are_member_unions(self, big_tree, big_probs):
        strategy = HeuristicReducedOpt(big_tree, big_probs)
        component = frozenset(big_tree.iter_dfs())
        reduced, _ = strategy._reduce(component, big_tree.root)
        for i, payload in enumerate(reduced.payload):
            assert reduced.results[i] == big_tree.distinct_results(payload)

    def test_root_supernode_is_node_zero(self, big_tree, big_probs):
        strategy = HeuristicReducedOpt(big_tree, big_probs)
        component = frozenset(big_tree.iter_dfs())
        reduced, part_roots = strategy._reduce(component, big_tree.root)
        assert part_roots[0] == big_tree.root
        assert big_tree.root in reduced.payload[0]


class TestBestCut:
    def test_cut_is_valid_for_original_tree(self, big_tree, big_probs):
        strategy = HeuristicReducedOpt(big_tree, big_probs)
        component = frozenset(big_tree.iter_dfs())
        decision = strategy.best_cut(component, big_tree.root)
        assert decision.cut
        assert is_valid_edgecut(big_tree, component, decision.cut)

    def test_small_component_solved_exactly(self, big_tree, big_probs):
        # Take a small subtree: no reduction should happen.
        small_root = None
        for node in big_tree.iter_dfs():
            size = len(big_tree.subtree_nodes(node))
            if 3 <= size <= 8:
                small_root = node
                break
        assert small_root is not None
        component = big_tree.subtree_nodes(small_root)
        strategy = HeuristicReducedOpt(big_tree, big_probs, max_reduced_nodes=10)
        decision = strategy.best_cut(component, small_root)
        assert decision.reduced_size == len(component)
        # Must match a direct Opt-EdgeCut run.
        cut_tree = CutTree.from_component(big_tree, big_probs, component, small_root)
        exact = OptEdgeCut(cut_tree, big_probs).solve()
        assert decision.expected_cost == pytest.approx(exact.expected_cost)

    def test_singleton_component_yields_empty_cut(self, big_tree, big_probs):
        strategy = HeuristicReducedOpt(big_tree, big_probs)
        leaf = next(n for n in big_tree.iter_dfs() if big_tree.is_leaf(n))
        decision = strategy.best_cut(frozenset({leaf}), leaf)
        assert decision.cut == ()

    def test_choose_cut_uses_active_component(self, big_tree, big_probs):
        strategy = HeuristicReducedOpt(big_tree, big_probs)
        active = ActiveTree(big_tree)
        decision = strategy.choose_cut(active, big_tree.root)
        assert decision.cut
        active.expand(big_tree.root, decision.cut)  # applies cleanly

    def test_reduced_size_instrumentation(self, big_tree, big_probs):
        strategy = HeuristicReducedOpt(big_tree, big_probs, max_reduced_nodes=10)
        component = frozenset(big_tree.iter_dfs())
        decision = strategy.best_cut(component, big_tree.root)
        assert decision.reduced_size == strategy.last_reduced_size
        assert decision.reduced_size <= 10

    def test_max_reduced_nodes_validation(self, big_tree, big_probs):
        with pytest.raises(ValueError):
            HeuristicReducedOpt(big_tree, big_probs, max_reduced_nodes=1)


class TestMemoReuse:
    def test_subcomponents_answered_from_cache(self, big_tree, big_probs):
        """§VI-B: after one exact solve, later EXPANDs on its
        sub-components need no re-optimization."""
        strategy = HeuristicReducedOpt(big_tree, big_probs, max_reduced_nodes=10)
        # Find a small component, solve it exactly, then expand a child.
        small_root = next(
            n
            for n in big_tree.iter_dfs()
            if 4 <= len(big_tree.subtree_nodes(n)) <= 8
        )
        component = big_tree.subtree_nodes(small_root)
        decision = strategy.best_cut(component, small_root)
        assert strategy.cache_hits == 0
        # Any sub-component produced by the chosen cut is now cached.
        from repro.core.edgecut import cut_components

        upper, lowers = cut_components(big_tree, component, small_root, decision.cut)
        strategy.best_cut(upper, small_root)
        assert strategy.cache_hits == 1

    def test_reuse_can_be_disabled(self, big_tree, big_probs):
        strategy = HeuristicReducedOpt(
            big_tree, big_probs, max_reduced_nodes=10, reuse_memo=False
        )
        small_root = next(
            n
            for n in big_tree.iter_dfs()
            if 4 <= len(big_tree.subtree_nodes(n)) <= 8
        )
        component = big_tree.subtree_nodes(small_root)
        strategy.best_cut(component, small_root)
        strategy.best_cut(component, small_root)
        assert strategy.cache_hits == 0

    def test_cached_decision_is_valid(self, big_tree, big_probs):
        from repro.core.edgecut import cut_components, is_valid_edgecut

        strategy = HeuristicReducedOpt(big_tree, big_probs, max_reduced_nodes=10)
        small_root = next(
            n
            for n in big_tree.iter_dfs()
            if 4 <= len(big_tree.subtree_nodes(n)) <= 8
        )
        component = big_tree.subtree_nodes(small_root)
        decision = strategy.best_cut(component, small_root)
        upper, _ = cut_components(big_tree, component, small_root, decision.cut)
        if len(upper) > 1:
            cached = strategy.best_cut(upper, small_root)
            if cached.cut:
                assert is_valid_edgecut(big_tree, upper, cached.cut)


class TestRepeatedExpansion:
    def test_navigation_descends_without_errors(self, big_tree, big_probs):
        """Repeatedly expanding components never produces an invalid cut."""
        strategy = HeuristicReducedOpt(big_tree, big_probs)
        active = ActiveTree(big_tree)
        for _ in range(15):
            expandable = active.component_roots()
            if not expandable:
                break
            node = max(expandable, key=lambda n: len(active.component(n)))
            decision = strategy.choose_cut(active, node)
            assert is_valid_edgecut(big_tree, active.component(node), decision.cut)
            active.expand(node, decision.cut)


class TestSharedDecisionCache:
    def test_sessions_share_external_decision_store(self, big_tree, big_probs):
        shared = {}
        first = HeuristicReducedOpt(big_tree, big_probs, decision_cache=shared)
        second = HeuristicReducedOpt(big_tree, big_probs, decision_cache=shared)
        component = frozenset(big_tree.iter_dfs())
        decision = first.best_cut(component, big_tree.root)
        assert first.decision_cache_size == len(shared) > 0
        # The second strategy has done no optimization of its own, yet
        # answers the same EXPAND from the shared store.
        assert second.cache_hits == 0
        replay = second.best_cut(component, big_tree.root)
        assert second.cache_hits == 1
        assert replay == decision

    def test_default_cache_is_private(self, big_tree, big_probs):
        first = HeuristicReducedOpt(big_tree, big_probs)
        second = HeuristicReducedOpt(big_tree, big_probs)
        component = frozenset(big_tree.iter_dfs())
        first.best_cut(component, big_tree.root)
        second.best_cut(component, big_tree.root)
        assert second.cache_hits == 0
