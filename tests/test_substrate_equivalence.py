"""Backend-equivalence suite: ``InMemoryStore`` vs ``MmapStore``.

One corpus, two backends: the toy in-memory store and a substrate
directory built from the same citation stream must answer every corpus
question with the same values — store primitives, boolean-AND result
sets, search-engine ``[mh]`` queries, navigation trees, and the
Opt-EdgeCut expansions the solver path produces (bit-identical cuts).
Also verifies that a fleet of forked cluster workers serves one shared
mmap store rather than per-process corpus copies.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bionav import BioNav
from repro.cluster.workers import WorkerSupervisor
from repro.corpus.citation import Citation
from repro.corpus.medline import MedlineDatabase
from repro.hierarchy.generator import generate_hierarchy
from repro.search.engine import SearchEngine
from repro.substrate import InMemoryStore, MmapStore, SubstrateBuilder, citation_chunks

N_CITATIONS = 500


@pytest.fixture(scope="module")
def corpus():
    hierarchy = generate_hierarchy(target_size=250, seed=11)
    rng = np.random.default_rng(17)
    citations = []
    for i in range(N_CITATIONS):
        concepts = tuple(
            sorted(
                set(rng.integers(1, len(hierarchy), size=rng.integers(2, 12)).tolist())
            )
        )
        citations.append(
            Citation(
                pmid=30_000_000 + i,
                title="Equivalence citation %d" % i,
                year=int(1991 + (i % 17)),
                index_concepts=concepts,
            )
        )
    background = {c: 200 + 3 * c for c in range(len(hierarchy))}
    return hierarchy, citations, background


@pytest.fixture(scope="module")
def memory_store(corpus):
    hierarchy, citations, background = corpus
    medline = MedlineDatabase(background_counts=background)
    medline.add_all(citations)
    return InMemoryStore(medline, hierarchy=hierarchy)


@pytest.fixture(scope="module")
def mmap_store(corpus, tmp_path_factory):
    hierarchy, citations, background = corpus
    out = tmp_path_factory.mktemp("equivalence-substrate")
    builder = SubstrateBuilder(str(out), num_concepts=len(hierarchy))
    builder.build(
        citation_chunks(iter(citations), chunk_size=128),
        hierarchy=hierarchy,
        background=background,
    )
    return MmapStore(str(out))


def busiest_concepts(store, k=6):
    counts = [(store.result_count(c), c) for c in range(store.num_concepts)]
    return [c for _, c in sorted(counts, reverse=True)[:k]]


class TestStorePrimitives:
    def test_same_corpus_shape(self, memory_store, mmap_store):
        assert len(memory_store) == len(mmap_store) == N_CITATIONS
        assert memory_store.pmids() == mmap_store.pmids()
        assert memory_store.num_concepts == mmap_store.num_concepts

    def test_concepts_of_every_citation(self, memory_store, mmap_store):
        for pmid in memory_store.pmids():
            assert memory_store.concepts_of(pmid) == mmap_store.concepts_of(pmid)

    def test_counts_match_for_every_concept(self, memory_store, mmap_store):
        for concept in range(memory_store.num_concepts):
            assert memory_store.result_count(concept) == mmap_store.result_count(
                concept
            ), concept
            assert memory_store.medline_count(concept) == mmap_store.medline_count(
                concept
            ), concept

    def test_concept_membership_and_bitmaps(self, memory_store, mmap_store):
        for concept in busiest_concepts(mmap_store) + [0, 1]:
            assert (
                memory_store.citations_for_concept(concept).tolist()
                == mmap_store.citations_for_concept(concept).tolist()
            )
            assert memory_store.concept_bitmap(concept) == mmap_store.concept_bitmap(
                concept
            )

    def test_boolean_and_identical(self, memory_store, mmap_store):
        top = busiest_concepts(mmap_store)
        for combo in ([top[0]], top[:2], top[:3], [top[0], top[-1]]):
            assert (
                memory_store.boolean_and(combo).tolist()
                == mmap_store.boolean_and(combo).tolist()
            ), combo

    def test_annotations_for_result_identical(self, memory_store, mmap_store):
        pmids = memory_store.pmids()[::7]
        assert memory_store.annotations_for_result(
            pmids
        ) == mmap_store.annotations_for_result(pmids)


class TestSearchEquivalence:
    def test_mh_queries_return_identical_result_sets(
        self, corpus, memory_store, mmap_store
    ):
        hierarchy, _, _ = corpus
        mem = SearchEngine.from_store(memory_store)
        mm = SearchEngine.from_store(mmap_store)
        top = busiest_concepts(mmap_store)
        queries = [
            "%d[mh]" % top[0],
            "%d[mh] %d[mh]" % (top[0], top[1]),
            "%s[mh]" % hierarchy.uid(top[2]),
            "%s[mh]" % hierarchy.label(top[3]),
        ]
        for query in queries:
            left, right = mem.search(query), mm.search(query)
            assert left.pmids == right.pmids, query
            assert left.count > 0, query

    def test_free_text_rejected_without_index(self, mmap_store):
        engine = SearchEngine.from_store(mmap_store)
        with pytest.raises(ValueError):
            engine.search("prothymosin")


class TestNavigationEquivalence:
    @pytest.fixture(scope="class")
    def systems(self, memory_store, mmap_store):
        return (
            BioNav.from_store(memory_store),
            BioNav.from_store(mmap_store),
        )

    def test_end_to_end_trees_and_cuts_are_bit_identical(self, systems, mmap_store):
        mem_nav, mmap_nav = systems
        top = busiest_concepts(mmap_store)
        query = "%d[mh] %d[mh]" % (top[0], top[1])
        left = mem_nav.search(query)
        right = mmap_nav.search(query)
        assert left.pmids == right.pmids
        assert set(left.tree.nodes()) == set(right.tree.nodes())
        # Drive the same expansion sequence on both backends; the
        # EdgeCut chosen at every step must reveal the same nodes in
        # the same order — the "bit-identical cuts" gate.
        frontier = [left.tree.root]
        expansions = 0
        while frontier and expansions < 3:
            node = frontier.pop(0)
            try:
                out_l = left.session.expand(node)
            except ValueError:
                # Leaf/no-component node: the other backend must agree.
                with pytest.raises(ValueError):
                    right.session.expand(node)
                continue
            out_r = right.session.expand(node)
            assert out_l.revealed == out_r.revealed
            frontier.extend(out_l.revealed)
            expansions += 1
        assert left.session.navigation_cost == right.session.navigation_cost

    def test_content_keys_come_from_manifest_not_rehash(self, systems, mmap_store):
        _, mmap_nav = systems
        digest = mmap_nav.database.content_digest()
        # Store-backed keys derive from the build manifest digest; the
        # toy path hashes the hierarchy records instead.
        import hashlib

        expected = hashlib.sha256(
            ("substrate|%s" % mmap_store.manifest_digest).encode("utf-8")
        ).hexdigest()[:40]
        assert digest == expected


class TestClusterSharedStore:
    def test_fleet_reports_one_shared_mmap_store(self, mmap_store):
        bionav = BioNav.from_store(mmap_store)
        supervisor = WorkerSupervisor(
            bionav, count=2, options={"heartbeat_interval": 0.05}
        )
        try:
            deadline = time.monotonic() + 10.0
            stores = []
            while time.monotonic() < deadline:
                rows = supervisor.describe()
                stores = [
                    row["heartbeat"].get("store")
                    for row in rows
                    if row["heartbeat"].get("store")
                ]
                if len(stores) == 2:
                    break
                time.sleep(0.05)
            assert len(stores) == 2, "workers never reported their store"
            for block in stores:
                assert block["backend"] == "mmap"
                assert block["path"] == mmap_store.path
                assert block["manifest"] == mmap_store.manifest_digest
            payload = supervisor.call(0, "health")
            assert payload["store"]["backend"] == "mmap"
            assert payload["store"]["manifest"] == mmap_store.manifest_digest
        finally:
            supervisor.close()
