"""Property suite: vectorized CostArrays kernels vs the scalar oracle.

The scalar :class:`~repro.core.probabilities.ProbabilityModel` is the
reference implementation of the §IV estimates; the vectorized
:class:`~repro.core.cost_arrays.CostArrays` kernels must agree with it
within 1e-9 relative on every component of every tree — including the
corners that historically break vectorizations: components whose
distinct-citation count sits *exactly* on the lower or upper threshold,
members with zero citations, and singleton components.  Aggregate float
sums may legitimately differ in the last ulps (pairwise vs sequential
summation — see the ``cost_arrays`` module docstring); the tolerance
pins how far.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost_arrays import CostArrays, segment_sums
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.hierarchy.concept import ConceptHierarchy

RELATIVE_TOLERANCE = 1e-9


def close(batch_value: float, scalar_value: float) -> bool:
    return abs(batch_value - scalar_value) <= RELATIVE_TOLERANCE * max(
        1.0, abs(scalar_value)
    )


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def scenarios(draw, max_nodes: int = 18, max_citations: int = 40):
    """(tree, probs) over a random hierarchy with random annotations.

    Unannotated nodes are spliced out of the navigation tree per
    Definition 2, but the always-kept root is a natural zero-count
    member whenever it draws no annotations itself.  MEDLINE totals are
    drawn per scenario so the IDF denominators vary too.
    """
    n = draw(st.integers(2, max_nodes))
    h = ConceptHierarchy(root_label="root")
    for node in range(1, n):
        parent = draw(st.integers(0, node - 1))
        h.add_child(parent, "n%d" % node)
    annotations: Dict[int, Set[int]] = {}
    for node in range(1, n):
        if draw(st.booleans()):
            annotations[node] = draw(
                st.sets(st.integers(1, max_citations), min_size=1, max_size=10)
            )
    tree = NavigationTree.build(h, annotations)
    total = draw(st.integers(1, 10_000))
    probs = ProbabilityModel(tree, lambda _node: total)
    return tree, probs


@st.composite
def components_of(draw, tree: NavigationTree, max_components: int = 8):
    """A batch of random connected-ish components (subsets incl. corners).

    Always includes at least one singleton so every batch exercises the
    ``len(component) <= 1`` branch.  Drawn components may be *empty*
    (min_size=0) — and can land anywhere in the batch, including last,
    the position where a clamped segmented reduction would corrupt the
    preceding component's value (the PR-review regression).
    """
    nodes = sorted(tree.iter_dfs())
    batch: List[List[int]] = [[draw(st.sampled_from(nodes))]]
    count = draw(st.integers(0, max_components - 1))
    for _ in range(count):
        members = draw(
            st.sets(st.sampled_from(nodes), min_size=0, max_size=len(nodes))
        )
        batch.append(sorted(members))
    return batch


# ---------------------------------------------------------------------------
# Equivalence properties
# ---------------------------------------------------------------------------
class TestBatchScalarEquivalence:
    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_explore_matches_scalar(self, data):
        tree, probs = data.draw(scenarios())
        batch = data.draw(components_of(tree))
        values = probs.explore_batch(batch)
        assert values.shape == (len(batch),)
        for component, value in zip(batch, values):
            assert close(value, probs.explore(component))

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_expand_matches_scalar(self, data):
        tree, probs = data.draw(scenarios())
        batch = data.draw(components_of(tree))
        values = probs.expand_batch(batch)
        for component, value in zip(batch, values):
            root = component[0] if component else tree.root
            expected = probs.expand(frozenset(component), root)
            assert close(value, expected)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_distinct_counts_are_exact(self, data):
        tree, probs = data.draw(scenarios())
        batch = data.draw(components_of(tree))
        counts = probs.arrays.distinct_counts(batch)
        for component, count in zip(batch, counts):
            assert int(count) == len(tree.distinct_results(component))

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_entropy_matches_scalar(self, data):
        tree, probs = data.draw(scenarios())
        batch = data.draw(components_of(tree))
        arrays = probs.arrays
        flat, offsets, lengths = arrays.flatten(batch)
        entropy = arrays.normalized_entropy(
            arrays.result_counts[flat], offsets, lengths
        )
        for component, value in zip(batch, entropy):
            member_counts = [
                len(tree.results(m)) for m in sorted(component)
            ]
            expected = probs._normalized_entropy(member_counts)
            assert close(value, expected)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_per_node_mass_is_bit_identical(self, data):
        tree, probs = data.draw(scenarios())
        arrays = probs.arrays
        for index, node in enumerate(arrays.preorder_ids.tolist()):
            assert probs.explore_mass(node) == float(arrays.explore_mass[index])
        singles = [[n] for n in arrays.preorder_ids.tolist()]
        batch = probs.explore_batch(singles)
        for node, value in zip(arrays.preorder_ids.tolist(), batch):
            assert close(value, probs.explore_node(node))


class TestThresholdEdges:
    """Components engineered to sit exactly on the EXPAND thresholds."""

    def _chain_with_counts(self, counts: List[int]):
        """A root chain where node i+1 carries ``counts[i]`` distinct pmids."""
        h = ConceptHierarchy(root_label="root")
        annotations: Dict[int, Set[int]] = {}
        next_pmid = 1
        previous = 0
        for count in counts:
            node = h.add_child(previous, "n%d" % next_pmid)
            annotations[node] = set(range(next_pmid, next_pmid + count))
            next_pmid += count
            previous = node
        tree = NavigationTree.build(h, annotations)
        probs = ProbabilityModel(tree, lambda _n: 1000)
        return tree, probs

    def _assert_agreement(self, probs, component):
        batch = float(probs.expand_batch([component])[0])
        scalar = probs.expand(frozenset(component), component[0])
        assert close(batch, scalar)
        return batch

    def test_distinct_exactly_at_lower_threshold(self):
        # distinct == lower: not "< lower", so the entropy branch runs.
        tree, probs = self._chain_with_counts([5, 5])
        component = sorted(tree.iter_dfs())
        assert len(tree.distinct_results(component)) == probs.lower_threshold
        value = self._assert_agreement(probs, component)
        assert 0.0 < value <= 1.0

    def test_distinct_one_below_lower_threshold(self):
        tree, probs = self._chain_with_counts([5, 4])
        component = sorted(tree.iter_dfs())
        assert len(tree.distinct_results(component)) == probs.lower_threshold - 1
        assert self._assert_agreement(probs, component) == 0.0

    def test_distinct_exactly_at_upper_threshold(self):
        # distinct == upper: not "> upper", so the entropy branch runs.
        tree, probs = self._chain_with_counts([25, 25])
        component = sorted(tree.iter_dfs())
        assert len(tree.distinct_results(component)) == probs.upper_threshold
        value = self._assert_agreement(probs, component)
        assert 0.0 < value <= 1.0

    def test_distinct_one_above_upper_threshold(self):
        tree, probs = self._chain_with_counts([26, 25])
        component = sorted(tree.iter_dfs())
        assert len(tree.distinct_results(component)) == probs.upper_threshold + 1
        assert self._assert_agreement(probs, component) == 1.0

    def test_singleton_component_is_zero_even_above_threshold(self):
        tree, probs = self._chain_with_counts([60])
        component = [sorted(tree.iter_dfs())[1]]
        assert self._assert_agreement(probs, component) == 0.0

    def test_zero_count_member_in_entropy_denominator(self):
        # Empty-result concepts are spliced out (Definition 2), so the
        # root is the one zero-count member a navigation tree can hold.
        # It must contribute nothing to the entropy sum but still widen
        # the max-entropy denominator (log 3, not log 2) on both paths.
        h = ConceptHierarchy(root_label="root")
        a = h.add_child(0, "a")
        b = h.add_child(0, "b")
        tree = NavigationTree.build(h, {a: set(range(1, 11)), b: set(range(11, 21))})
        probs = ProbabilityModel(tree, lambda _n: 1000)
        component = [0, a, b]
        assert len(tree.results(0)) == 0
        value = self._assert_agreement(probs, component)
        assert 0.0 < value < 1.0

    def test_zero_count_singleton_root(self):
        h = ConceptHierarchy(root_label="root")
        a = h.add_child(0, "a")
        tree = NavigationTree.build(h, {a: {1, 2}})
        probs = ProbabilityModel(tree, lambda _n: 1000)
        assert self._assert_agreement(probs, [0]) == 0.0
        assert float(probs.explore_batch([[0]])[0]) == 0.0


class TestSegmentSums:
    def test_empty_segments_sum_to_zero(self):
        values = np.asarray([1.0, 2.0, 3.0])
        offsets = np.asarray([0, 2, 2, 3, 3])
        lengths = np.asarray([2, 0, 1, 0, 0])
        out = segment_sums(values, offsets, lengths)
        assert out.tolist() == [3.0, 0.0, 3.0, 0.0, 0.0]

    def test_trailing_empty_after_multielement_segment(self):
        # Regression: a clamped reduceat pulled the trailing empty
        # segment's offset back onto the last element, splitting the
        # preceding multi-element segment ([8, 16] summed as just 8).
        values = np.asarray([1.0, 2.0, 4.0, 8.0, 16.0])
        offsets = np.asarray([0, 3, 5])
        lengths = np.asarray([3, 2, 0])
        out = segment_sums(values, offsets, lengths)
        assert out.tolist() == [7.0, 24.0, 0.0]

    def test_batch_ending_in_empty_component(self):
        # Same regression at the kernel level: the empty component must
        # not truncate the preceding component's sums, distinct counts,
        # or EXPAND value.
        h = ConceptHierarchy(root_label="root")
        a = h.add_child(0, "a")
        b = h.add_child(0, "b")
        c = h.add_child(0, "c")
        tree = NavigationTree.build(
            h, {a: set(range(1, 11)), b: set(range(6, 16)), c: set(range(16, 26))}
        )
        probs = ProbabilityModel(tree, lambda _n: 1000)
        full = [a, b, c]
        batch = [[a], full, []]
        explore = probs.explore_batch(batch)
        assert close(float(explore[1]), probs.explore(full))
        distinct = probs.arrays.distinct_counts(batch)
        assert distinct.tolist() == [10, 25, 0]
        expand = probs.expand_batch(batch)
        assert close(float(expand[1]), probs.expand(frozenset(full), a))
        assert float(expand[0]) == 0.0 and float(expand[2]) == 0.0

    def test_empty_batch(self):
        out = segment_sums(
            np.zeros(0), np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert out.shape == (0,)

    def test_content_key_is_deterministic(self):
        h = ConceptHierarchy(root_label="root")
        a = h.add_child(0, "a")
        tree = NavigationTree.build(h, {a: {1, 2, 3}})
        first = CostArrays(tree, lambda _n: 100)
        second = CostArrays(tree, lambda _n: 100)
        assert first.content_key == second.content_key
        assert len(first.content_key) == 40
        different = CostArrays(tree, lambda _n: 100, upper_threshold=51)
        assert different.content_key != first.content_key

    def test_content_key_sees_citation_identity(self):
        # Same per-node counts, different citation ids → different keys
        # (distinct-count semantics differ, so the cache must not share).
        h = ConceptHierarchy(root_label="root")
        a = h.add_child(0, "a")
        b = h.add_child(0, "b")
        overlapping = NavigationTree.build(h, {a: {1, 2}, b: {2, 3}})
        disjoint = NavigationTree.build(h, {a: {1, 2}, b: {3, 4}})
        assert (
            CostArrays(overlapping, lambda _n: 100).content_key
            != CostArrays(disjoint, lambda _n: 100).content_key
        )

    def test_citation_bitmap_is_lazy(self):
        h = ConceptHierarchy(root_label="root")
        a = h.add_child(0, "a")
        b = h.add_child(0, "b")
        tree = NavigationTree.build(h, {a: {1, 2, 3}, b: {3, 4}})
        arrays = CostArrays(tree, lambda _n: 100)
        assert arrays._packed is None  # keying must not force the build
        arrays.explore([[a, b]])
        assert arrays._packed is None  # EXPLORE never needs bitmaps
        assert arrays.distinct_counts([[a, b]]).tolist() == [4]
        assert arrays._packed is not None
