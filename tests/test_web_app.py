"""Tests for the BioNav WSGI web application."""

from __future__ import annotations

import re
from typing import Dict, List, Tuple
from urllib.parse import urlencode

import pytest

from repro.bionav import BioNav
from repro.web.app import BioNavWebApp


@pytest.fixture(scope="module")
def app(request) -> BioNavWebApp:
    workload = request.getfixturevalue("small_workload")
    return BioNavWebApp(BioNav(workload.database, workload.entrez))


def request_page(app, path: str, query: Dict[str, str] = None) -> Tuple[str, str]:
    """Drive the WSGI callable directly; returns (status, body)."""
    environ = {
        "REQUEST_METHOD": "GET",
        "PATH_INFO": path,
        "QUERY_STRING": urlencode(query or {}),
        "SERVER_NAME": "test",
        "SERVER_PORT": "80",
        "wsgi.url_scheme": "http",
    }
    captured: List = []

    def start_response(status, headers):
        captured.append((status, headers))

    chunks = app(environ, start_response)
    body = b"".join(chunks).decode("utf-8")
    status, headers = captured[0]
    header_map = dict(headers)
    assert header_map["Content-Length"] == str(len(body.encode("utf-8")))
    return status, body


def session_id_of(body: str) -> str:
    match = re.search(r"/nav/(s\d+)", body)
    assert match, "no session link in page"
    return match.group(1)


class TestBasicPages:
    def test_home_page(self, app):
        status, body = request_page(app, "/")
        assert status == "200 OK"
        assert "<form" in body

    def test_unknown_path_404(self, app):
        status, _ = request_page(app, "/nope")
        assert status == "404 Not Found"

    def test_search_without_query_400(self, app):
        status, _ = request_page(app, "/search")
        assert status == "400 Bad Request"

    def test_search_no_results(self, app):
        status, body = request_page(app, "/search", {"q": "zzzunmatched"})
        assert status == "200 OK"
        assert "No citations match" in body


class TestNavigationFlow:
    def test_search_creates_session_with_root(self, app):
        status, body = request_page(app, "/search", {"q": "prothymosin"})
        assert status == "200 OK"
        assert "prothymosin" in body
        assert "&gt;&gt;&gt;" in body  # the root expand hyperlink
        assert "Session effort" in body

    def test_expand_reveals_concepts(self, app):
        _, body = request_page(app, "/search", {"q": "prothymosin"})
        sid = session_id_of(body)
        # The root's expand link carries its node id.
        match = re.search(r"/nav/%s/expand\?node=(\d+)" % sid, body)
        assert match
        node = match.group(1)
        status, expanded = request_page(
            app, "/nav/%s/expand" % sid, {"node": node}
        )
        assert status == "200 OK"
        assert expanded.count("<li>") > body.count("<li>")

    def test_results_page_lists_citations(self, app):
        _, body = request_page(app, "/search", {"q": "varenicline"})
        sid = session_id_of(body)
        match = re.search(r"/nav/%s/results\?node=(\d+)" % sid, body)
        node = match.group(1)
        status, results = request_page(
            app, "/nav/%s/results" % sid, {"node": node}
        )
        assert status == "200 OK"
        assert "citations under" in results
        assert "varenicline" in results

    def test_backtrack_restores_previous_view(self, app):
        _, body = request_page(app, "/search", {"q": "follistatin"})
        sid = session_id_of(body)
        node = re.search(r"/nav/%s/expand\?node=(\d+)" % sid, body).group(1)
        _, expanded = request_page(app, "/nav/%s/expand" % sid, {"node": node})
        _, restored = request_page(app, "/nav/%s/backtrack" % sid)
        assert restored.count("<li>") == body.count("<li>")

    def test_unknown_session_404(self, app):
        status, _ = request_page(app, "/nav/s999999")
        assert status == "404 Not Found"

    def test_expand_with_bad_node_400(self, app):
        _, body = request_page(app, "/search", {"q": "prothymosin"})
        sid = session_id_of(body)
        status, _ = request_page(app, "/nav/%s/expand" % sid, {"node": "abc"})
        assert status == "400 Bad Request"

    def test_expand_singleton_400(self, app):
        _, body = request_page(app, "/search", {"q": "prothymosin"})
        sid = session_id_of(body)
        status, _ = request_page(app, "/nav/%s/expand" % sid, {"node": "999999"})
        assert status == "400 Bad Request"


class TestJsonApi:
    def test_api_search_returns_session(self, app):
        import json

        status, body = request_page(app, "/api/search", {"q": "prothymosin"})
        assert status == "200 OK"
        data = json.loads(body)
        assert data["count"] == 313
        assert data["session"].startswith("s")

    def test_api_state_rows_and_cost(self, app):
        import json

        _, body = request_page(app, "/api/search", {"q": "prothymosin"})
        sid = json.loads(body)["session"]
        status, state = request_page(app, "/api/nav/%s" % sid)
        assert status == "200 OK"
        data = json.loads(state)
        assert data["rows"][0]["label"] == "MeSH"
        assert data["rows"][0]["expandable"]
        assert data["cost"]["expands"] == 0

    def test_api_expand_and_results(self, app):
        import json

        _, body = request_page(app, "/api/search", {"q": "varenicline"})
        sid = json.loads(body)["session"]
        _, state = request_page(app, "/api/nav/%s" % sid)
        root = json.loads(state)["rows"][0]["node"]
        status, expanded = request_page(
            app, "/api/nav/%s/expand" % sid, {"node": str(root)}
        )
        assert status == "200 OK"
        data = json.loads(expanded)
        assert data["cost"]["expands"] == 1
        assert len(data["rows"]) > 1
        leaf = data["rows"][-1]["node"]
        status, results = request_page(
            app, "/api/nav/%s/results" % sid, {"node": str(leaf)}
        )
        assert status == "200 OK"
        assert json.loads(results)["pmids"]

    def test_api_errors_are_json(self, app):
        import json

        status, body = request_page(app, "/api/nav/s999999")
        assert status == "404 Not Found"
        assert "error" in json.loads(body)
        status, body = request_page(app, "/api/search")
        assert status == "400 Bad Request"
        assert "error" in json.loads(body)

    def test_api_backtrack(self, app):
        import json

        _, body = request_page(app, "/api/search", {"q": "LbetaT2"})
        sid = json.loads(body)["session"]
        _, state = request_page(app, "/api/nav/%s" % sid)
        root = json.loads(state)["rows"][0]["node"]
        request_page(app, "/api/nav/%s/expand" % sid, {"node": str(root)})
        _, after = request_page(app, "/api/nav/%s/backtrack" % sid)
        assert len(json.loads(after)["rows"]) == 1


class TestSessionBounds:
    def test_session_store_is_bounded(self, small_workload):
        from repro.bionav import BioNav

        bounded = BioNavWebApp(
            BioNav(small_workload.database, small_workload.entrez), max_sessions=2
        )
        import json

        sids = []
        for _ in range(3):
            _, body = request_page(bounded, "/api/search", {"q": "prothymosin"})
            sids.append(json.loads(body)["session"])
        # The oldest session was evicted: the API answers 410 with a
        # machine-readable code, distinct from an unknown id's 404.
        status, body = request_page(bounded, "/api/nav/%s" % sids[0])
        assert status == "410 Gone"
        error = json.loads(body)
        assert error["error_code"] == "session_expired"
        assert "re-run" in error["error"]
        status, _ = request_page(bounded, "/api/nav/%s" % sids[-1])
        assert status == "200 OK"
        # An id the registry never issued is still a plain 404.
        status, _ = request_page(bounded, "/api/nav/s999999")
        assert status == "404 Not Found"

    def test_expired_session_html_page_links_home(self, small_workload):
        from repro.bionav import BioNav

        bounded = BioNavWebApp(
            BioNav(small_workload.database, small_workload.entrez), max_sessions=1
        )
        _, body = request_page(bounded, "/search", {"q": "prothymosin"})
        sid = session_id_of(body)
        request_page(bounded, "/search", {"q": "varenicline"})  # evicts sid
        status, page = request_page(bounded, "/nav/%s" % sid)
        assert status == "410 Gone"
        assert "expired" in page
        assert 'href="/"' in page


class TestRouterFuzz:
    def test_arbitrary_paths_never_crash(self, app):
        """The router answers any path with a well-formed HTTP response."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            st.text(
                alphabet="abcdefgs0123456789/?=&%._-",
                max_size=40,
            ),
            st.dictionaries(
                st.sampled_from(["q", "node", "other"]),
                st.text(alphabet="abc123 -", max_size=8),
                max_size=2,
            ),
        )
        @settings(max_examples=120, deadline=None)
        def fuzz(path, params):
            status, body = request_page(app, "/" + path.lstrip("/"), params)
            assert status.split(" ", 1)[0] in ("200", "400", "404")
            assert body

        fuzz()


class TestCaching:
    def test_tree_shared_across_sessions(self, app):
        before = app.runtime.queries.hits
        request_page(app, "/search", {"q": "dyslexia genetics"})
        request_page(app, "/search", {"q": "dyslexia genetics"})
        assert app.runtime.queries.hits > before

    def test_sessions_are_independent(self, app):
        _, body_a = request_page(app, "/search", {"q": "LbetaT2"})
        _, body_b = request_page(app, "/search", {"q": "LbetaT2"})
        sid_a = session_id_of(body_a)
        sid_b = session_id_of(body_b)
        assert sid_a != sid_b
        node = re.search(r"/nav/%s/expand\?node=(\d+)" % sid_a, body_a).group(1)
        _, expanded_a = request_page(app, "/nav/%s/expand" % sid_a, {"node": node})
        _, still_b = request_page(app, "/nav/%s" % sid_b)
        assert expanded_a.count("<li>") > still_b.count("<li>")


class TestStatsEndpoint:
    def test_api_stats_reports_caches_and_solver(self, request):
        import json

        workload = request.getfixturevalue("small_workload")
        app = BioNavWebApp(BioNav(workload.database, workload.entrez))
        _, body = request_page(app, "/api/search", {"q": "prothymosin"})
        sid = json.loads(body)["session"]
        _, state = request_page(app, "/api/nav/%s" % sid)
        root = json.loads(state)["rows"][0]["node"]
        request_page(app, "/api/nav/%s/expand" % sid, {"node": str(root)})

        status, body = request_page(app, "/api/stats")
        assert status == "200 OK"
        stats = json.loads(body)
        assert stats["query_cache"]["size"] == 1
        assert 0.0 <= stats["query_cache"]["hit_ratio"] <= 1.0
        assert stats["query_cache"]["single_flight_coalesced"] == 0
        assert stats["sessions"]["active"] == 1
        assert stats["sessions"]["created"] == 1
        assert stats["sessions"]["evicted"] == 0
        serving = stats["serving"]
        assert serving["workers"] >= 1
        assert serving["queue_depth"] == 0
        assert serving["in_flight"] == 0
        assert serving["completed"] == serving["admitted"]
        assert serving["shed"] == {"overload": 0, "deadline": 0, "total": 0}
        (entry,) = stats["queries"]
        assert entry["query"] == "prothymosin"
        assert entry["decision_cache_size"] > 0
        solver = stats["solver"]
        assert solver["expands"] == 1
        assert solver["mean_ms"] >= 0.0
        assert solver["p50_ms"] >= 0.0
        assert solver["p95_ms"] >= solver["p50_ms"]
        assert solver["mean_reduced_size"] > 0

    def test_api_health_reports_saturation(self, app):
        import json

        status, body = request_page(app, "/api/health")
        assert status == "200 OK"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["workers"] >= 1
        assert health["queue_depth"] == 0
        assert health["in_flight"] == 0
        assert health["queue_capacity"] > 0
        assert health["uptime_seconds"] >= 0.0

    def test_sessions_of_same_query_share_decisions(self, request):
        import json

        workload = request.getfixturevalue("small_workload")
        app = BioNavWebApp(BioNav(workload.database, workload.entrez))
        _, body = request_page(app, "/api/search", {"q": "prothymosin"})
        first = json.loads(body)["session"]
        _, state = request_page(app, "/api/nav/%s" % first)
        root = json.loads(state)["rows"][0]["node"]
        request_page(app, "/api/nav/%s/expand" % first, {"node": str(root)})
        _, body = request_page(app, "/api/stats")
        cached = json.loads(body)["queries"][0]["decision_cache_size"]

        # A second session of the same query answers its root EXPAND from
        # the shared store: the decision cache does not grow.
        _, body = request_page(app, "/api/search", {"q": "prothymosin"})
        second = json.loads(body)["session"]
        _, after = request_page(
            app, "/api/nav/%s/expand" % second, {"node": str(root)}
        )
        assert json.loads(after)["rows"]
        _, body = request_page(app, "/api/stats")
        stats = json.loads(body)
        assert stats["queries"][0]["decision_cache_size"] == cached
        assert stats["sessions"]["created"] == 2


class TestResultsPagination:
    """The SHOWRESULTS page size is configuration, not a magic literal."""

    def test_health_reports_default_page_size(self, app):
        import json

        from repro.serving.runtime import DEFAULT_RESULTS_PAGE_SIZE

        _, body = request_page(app, "/api/health")
        health = json.loads(body)
        assert health["results_page_size"] == DEFAULT_RESULTS_PAGE_SIZE
        assert health["results_page_size"] == 50
        assert health["solver"] == "heuristic"

    def test_custom_page_size_changes_rendering(self, request):
        workload = request.getfixturevalue("small_workload")
        app = BioNavWebApp(
            BioNav(workload.database, workload.entrez), results_page_size=5
        )
        _, body = request_page(app, "/search", {"q": "prothymosin"})
        sid = session_id_of(body)
        node = re.search(r"/nav/%s/results\?node=(\d+)" % sid, body).group(1)
        _, results = request_page(
            app, "/nav/%s/results" % sid, {"node": node}
        )
        assert results.count("<li>[") == 5
        assert re.search(r"\(showing first 5 of \d+\)", results)

    def test_default_page_is_unannotated_when_results_fit(self, request):
        workload = request.getfixturevalue("small_workload")
        app = BioNavWebApp(
            BioNav(workload.database, workload.entrez), results_page_size=400
        )
        _, body = request_page(app, "/search", {"q": "prothymosin"})
        sid = session_id_of(body)
        node = re.search(r"/nav/%s/results\?node=(\d+)" % sid, body).group(1)
        _, results = request_page(app, "/nav/%s/results" % sid, {"node": node})
        assert "showing first" not in results

    def test_nonpositive_page_size_rejected(self, request):
        workload = request.getfixturevalue("small_workload")
        with pytest.raises(ValueError):
            BioNavWebApp(
                BioNav(workload.database, workload.entrez), results_page_size=0
            )
