"""Unit tests for repro.hierarchy.mesh."""

from __future__ import annotations

import pytest

from repro.hierarchy.mesh import (
    PAPER_FRAGMENT_EDGES,
    format_tree_number,
    is_tree_number_ancestor,
    paper_fragment,
    parse_tree_number,
    tree_number_parent,
)


class TestTreeNumbers:
    def test_parse_simple(self):
        assert parse_tree_number("001.004.002") == (1, 4, 2)

    def test_parse_root(self):
        assert parse_tree_number("") == ()

    def test_format_round_trip(self):
        assert format_tree_number(parse_tree_number("003.012")) == "003.012"

    def test_format_pads_to_three_digits(self):
        assert format_tree_number([1, 22, 333]) == "001.022.333"

    def test_parse_rejects_non_numeric(self):
        with pytest.raises(ValueError):
            parse_tree_number("001.x.002")

    def test_parse_rejects_zero_component(self):
        with pytest.raises(ValueError):
            parse_tree_number("000")

    def test_parent(self):
        assert tree_number_parent("001.002.003") == "001.002"
        assert tree_number_parent("001") == ""

    def test_parent_of_root_raises(self):
        with pytest.raises(ValueError):
            tree_number_parent("")

    def test_ancestor_prefix_semantics(self):
        assert is_tree_number_ancestor("001", "001.002")
        assert is_tree_number_ancestor("", "005.001")
        assert is_tree_number_ancestor("001.002", "001.002")
        assert not is_tree_number_ancestor("001.002", "001")
        assert not is_tree_number_ancestor("002", "001.002")


class TestPaperFragment:
    def test_contains_all_edge_labels(self):
        h = paper_fragment()
        for label, parent_label in PAPER_FRAGMENT_EDGES:
            node = h.by_label(label)
            assert h.label(h.parent(node)) == parent_label

    def test_size_matches_edge_list(self):
        h = paper_fragment()
        assert len(h) == len(PAPER_FRAGMENT_EDGES) + 1  # + root

    def test_fig3_chain_is_present(self):
        # The EdgeCut anatomy of Fig. 3: Biological Phenomena... → Cell
        # Physiology → Cell Death → Apoptosis.
        h = paper_fragment()
        apoptosis = h.by_label("Apoptosis")
        path_labels = [h.label(n) for n in h.path_to_root(apoptosis)]
        assert path_labels == [
            "Apoptosis",
            "Cell Death",
            "Cell Physiology",
            "Biological Phenomena, Cell Phenomena, and Immunity",
            "MeSH",
        ]

    def test_cell_proliferation_under_growth_processes(self):
        # Fig. 2c: Cell Proliferation replaces Cell Growth Processes
        # because it is more specific with the same citations.
        h = paper_fragment()
        proliferation = h.by_label("Cell Proliferation")
        assert h.label(h.parent(proliferation)) == "Cell Growth Processes"

    def test_table1_target_concepts_present(self):
        h = paper_fragment()
        for label in [
            "Mice, Transgenic",
            "Substrate Specificity",
            "Nicotinic Agonists",
            "Perchloric Acid",
            "Histones",
            "Plants, Genetically Modified",
            "Phosphodiesterase Inhibitors",
            "Polymorphism, Single Nucleotide",
            "GABA Plasma Membrane Transport Proteins",
            "Follicle Stimulating Hormone",
        ]:
            h.by_label(label)  # raises KeyError if missing

    def test_fragment_is_a_tree(self):
        h = paper_fragment()
        # Every non-root node has exactly one parent and the root is an
        # ancestor of everything.
        for node in range(1, len(h)):
            assert h.is_ancestor(h.root, node)
