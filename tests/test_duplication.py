"""Unit tests for duplication analysis (paper §I arithmetic)."""

from __future__ import annotations

import pytest

from repro.core.duplication import (
    DuplicationStats,
    cut_duplication,
    group_stats,
    least_overlapping_groups,
    tree_duplication,
)


class TestStats:
    def test_duplicates_arithmetic(self):
        stats = DuplicationStats(total_attachments=185, distinct_citations=147)
        assert stats.duplicates == 38  # the paper's §I example
        assert stats.duplication_ratio == pytest.approx(38 / 147)

    def test_empty_group(self):
        stats = DuplicationStats(total_attachments=0, distinct_citations=0)
        assert stats.duplicates == 0
        assert stats.duplication_ratio == 0.0


class TestGroupStats:
    def test_disjoint_concepts(self, fragment_tree, fragment_hierarchy):
        autophagy = fragment_hierarchy.by_label("Autophagy")
        necrosis = fragment_hierarchy.by_label("Necrosis")
        stats = group_stats(fragment_tree, [autophagy, necrosis])
        assert stats.duplicates == 0
        assert stats.distinct_citations == 5

    def test_overlapping_subtrees(self, fragment_tree, fragment_hierarchy):
        # Cell Death's subtree includes Apoptosis; grouping both counts
        # Apoptosis citations twice.
        cell_death = fragment_hierarchy.by_label("Cell Death")
        apoptosis = fragment_hierarchy.by_label("Apoptosis")
        stats = group_stats(fragment_tree, [cell_death, apoptosis])
        assert stats.duplicates == len(fragment_tree.results(apoptosis))

    def test_tree_duplication_matches_table_columns(self, fragment_tree):
        stats = tree_duplication(fragment_tree)
        assert stats.total_attachments == fragment_tree.citations_with_duplicates()
        assert stats.distinct_citations == len(fragment_tree.all_results())
        assert stats.duplicates > 0  # the fragment overlaps by design


class TestCutDuplication:
    def test_components_with_shared_citations(self, fragment_tree, fragment_hierarchy):
        chromatin = fragment_hierarchy.by_label("Chromatin")
        histones = fragment_hierarchy.by_label("Histones")
        comp_a = frozenset({chromatin})
        comp_b = frozenset({histones})
        stats = cut_duplication(fragment_tree, [comp_a, comp_b])
        shared = fragment_tree.results(chromatin) & fragment_tree.results(histones)
        assert stats.duplicates == len(shared)


class TestLeastOverlappingGroups:
    def test_prefers_disjoint_groups(self, fragment_tree, fragment_hierarchy):
        labels = ["Autophagy", "Necrosis", "Cell Death", "Apoptosis"]
        candidates = [fragment_hierarchy.by_label(l) for l in labels]
        ranked = least_overlapping_groups(fragment_tree, candidates, group_size=2)
        best_group, best_stats = ranked[0]
        # Autophagy+Necrosis are fully disjoint; must rank first among
        # zero-duplicate pairs of equal coverage or beat overlapping pairs.
        assert best_stats.duplicates == 0

    def test_min_coverage_filters(self, fragment_tree, fragment_hierarchy):
        labels = ["Autophagy", "Necrosis", "Heterochromatin", "Euchromatin"]
        candidates = [fragment_hierarchy.by_label(l) for l in labels]
        # These four tiny concepts can never cover 90% of the result.
        assert (
            least_overlapping_groups(
                fragment_tree, candidates, group_size=2, min_coverage=0.9
            )
            == []
        )

    def test_group_size_validation(self, fragment_tree, fragment_hierarchy):
        with pytest.raises(ValueError):
            least_overlapping_groups(
                fragment_tree, [fragment_tree.root], group_size=2
            )

    def test_all_groups_scored(self, fragment_tree, fragment_hierarchy):
        labels = ["Autophagy", "Necrosis", "Apoptosis"]
        candidates = [fragment_hierarchy.by_label(l) for l in labels]
        ranked = least_overlapping_groups(fragment_tree, candidates, group_size=2)
        assert len(ranked) == 3  # C(3,2)
        duplicates = [stats.duplicates for _, stats in ranked]
        assert duplicates == sorted(duplicates)
