"""Unit tests for the positional index (phrase support)."""

from __future__ import annotations

import pytest

from repro.storage.positional import PositionalIndex


@pytest.fixture()
def index() -> PositionalIndex:
    idx = PositionalIndex()
    idx.add_document(1, "cell proliferation drives cell division")
    idx.add_document(2, "proliferation of the cell")
    idx.add_document(3, "cell cycle and division")
    return idx


class TestIndexing:
    def test_doc_count(self, index):
        assert len(index) == 3
        assert index.doc_ids() == {1, 2, 3}

    def test_duplicate_doc_rejected(self, index):
        with pytest.raises(ValueError):
            index.add_document(1, "again")

    def test_term_docs(self, index):
        assert index.term_docs("cell") == {1, 2, 3}
        assert index.term_docs("division") == {1, 3}
        assert index.term_docs("missing") == set()


class TestPhraseSearch:
    def test_adjacent_in_order(self, index):
        assert index.search_phrase("cell proliferation") == {1}

    def test_reversed_order_no_match(self, index):
        assert index.search_phrase("division cell") == set()

    def test_stopwords_skipped_in_phrase(self, index):
        # "proliferation of the cell" tokenizes to [proliferation, cell],
        # so the phrase matches post-tokenization adjacency.
        assert index.search_phrase("proliferation cell") | index.search_phrase(
            "proliferation of the cell"
        ) == {2}

    def test_three_token_phrase(self, index):
        assert index.search_phrase("cell proliferation drives") == {1}
        assert index.search_phrase("proliferation drives division") == set()

    def test_repeated_token_phrase(self):
        idx = PositionalIndex()
        idx.add_document(1, "signal signal transduction")
        assert idx.search_phrase("signal signal") == {1}
        assert idx.search_phrase("signal transduction") == {1}

    def test_single_token_phrase(self, index):
        assert index.search_phrase("division") == {1, 3}

    def test_empty_phrase(self, index):
        assert index.search_phrase("") == set()


class TestSearchTerm:
    def test_single_token_term(self, index):
        assert index.search_term("cycle") == {3}

    def test_multi_token_term_is_phrase(self, index):
        assert index.search_term("cell division") == {1}
