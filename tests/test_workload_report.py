"""Unit tests for the experiment report generator."""

from __future__ import annotations

import pytest

from repro.workload.report import generate_report, run_comparison


@pytest.fixture(scope="module")
def report_text(request):
    workload = request.getfixturevalue("small_workload")
    return generate_report(workload, title="Test report")


class TestRunComparison:
    def test_single_query_report(self, small_workload):
        prepared = small_workload.prepare("LbetaT2")
        report = run_comparison(small_workload, prepared)
        assert report.keyword == "LbetaT2"
        assert report.citations == 152
        assert report.static.reached and report.bionav.reached
        assert 0.0 <= report.improvement <= 1.0

    def test_improvement_matches_costs(self, small_workload):
        prepared = small_workload.prepare("varenicline")
        report = run_comparison(small_workload, prepared)
        expected = 1 - report.bionav.navigation_cost / report.static.navigation_cost
        assert report.improvement == pytest.approx(expected)


class TestGenerateReport:
    def test_contains_all_sections(self, report_text):
        assert "# Test report" in report_text
        assert "## Table I" in report_text
        assert "## Figure 8" in report_text
        assert "## Figure 9" in report_text
        assert "## Figure 10" in report_text

    def test_contains_every_query_row(self, report_text, small_workload):
        for built in small_workload.queries:
            assert built.spec.keyword in report_text

    def test_contains_average_improvement(self, report_text):
        assert "**average**" in report_text

    def test_contains_ascii_figure(self, report_text):
        assert "```" in report_text
        assert "#" in report_text

    def test_markdown_tables_are_well_formed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|") and not line.startswith("|---"):
                assert line.rstrip().endswith("|")
