"""Unit tests for repro.core.simulator (targeted-user navigation)."""

from __future__ import annotations

import pytest

from repro.core.heuristic import HeuristicReducedOpt
from repro.core.simulator import navigate_to_target
from repro.core.static_nav import StaticNavigation


@pytest.fixture()
def heuristic(fragment_tree, fragment_probs):
    return HeuristicReducedOpt(fragment_tree, fragment_probs)


@pytest.fixture()
def static(fragment_tree):
    return StaticNavigation(fragment_tree)


class TestNavigateToTarget:
    def test_reaches_deep_target(self, fragment_tree, fragment_hierarchy, heuristic):
        target = fragment_hierarchy.by_label("Apoptosis")
        outcome = navigate_to_target(fragment_tree, heuristic, target)
        assert outcome.reached
        assert outcome.expand_actions >= 1

    def test_static_reaches_same_target(self, fragment_tree, fragment_hierarchy, static):
        target = fragment_hierarchy.by_label("Apoptosis")
        outcome = navigate_to_target(fragment_tree, static, target)
        assert outcome.reached

    def test_costs_are_consistent(self, fragment_tree, fragment_hierarchy, heuristic):
        target = fragment_hierarchy.by_label("Histones")
        outcome = navigate_to_target(fragment_tree, heuristic, target)
        assert outcome.navigation_cost == outcome.concepts_revealed + outcome.expand_actions
        assert len(outcome.expands) == outcome.expand_actions

    def test_show_results_lists_target_citations(
        self, fragment_tree, fragment_hierarchy, heuristic
    ):
        target = fragment_hierarchy.by_label("Apoptosis")
        outcome = navigate_to_target(fragment_tree, heuristic, target)
        assert outcome.citations_displayed == len(fragment_tree.results(target))

    def test_show_results_can_be_disabled(
        self, fragment_tree, fragment_hierarchy, heuristic
    ):
        target = fragment_hierarchy.by_label("Apoptosis")
        outcome = navigate_to_target(
            fragment_tree, heuristic, target, show_results=False
        )
        assert outcome.citations_displayed == 0

    def test_root_target_is_immediately_visible(self, fragment_tree, heuristic):
        outcome = navigate_to_target(fragment_tree, heuristic, fragment_tree.root)
        assert outcome.reached
        assert outcome.expand_actions == 0

    def test_unknown_target_raises(self, fragment_tree, heuristic):
        with pytest.raises(KeyError):
            navigate_to_target(fragment_tree, heuristic, 10_000)

    def test_max_steps_bound(self, fragment_tree, fragment_hierarchy, heuristic):
        target = fragment_hierarchy.by_label("Euchromatin")
        outcome = navigate_to_target(fragment_tree, heuristic, target, max_steps=0)
        assert not outcome.reached
        assert outcome.expand_actions == 0

    def test_expand_records_have_instrumentation(
        self, fragment_tree, fragment_hierarchy, heuristic
    ):
        target = fragment_hierarchy.by_label("Necrosis")
        outcome = navigate_to_target(fragment_tree, heuristic, target)
        for i, record in enumerate(outcome.expands, start=1):
            assert record.step == i
            assert record.revealed >= 1
            assert record.reduced_size >= 1
            assert record.elapsed_seconds >= 0.0
        assert outcome.average_expand_seconds >= 0.0

    def test_bionav_reveals_fewer_concepts_per_expand_than_static(
        self, fragment_tree, fragment_hierarchy, heuristic, static
    ):
        """BioNav reveals selectively: far fewer concepts per EXPAND.

        (The full navigation-cost win needs the large bushy trees of the
        real workload — asserted in the integration tests; on an 18-node
        fragment static navigation is already near optimal.)
        """
        target = fragment_hierarchy.by_label("Apoptosis")
        bionav = navigate_to_target(fragment_tree, heuristic, target)
        baseline = navigate_to_target(fragment_tree, static, target)
        bionav_rate = bionav.concepts_revealed / max(bionav.expand_actions, 1)
        static_rate = baseline.concepts_revealed / max(baseline.expand_actions, 1)
        assert bionav_rate < static_rate
