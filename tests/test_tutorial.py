"""Executable-documentation gate: the tutorial's code blocks must run.

Extracts every fenced ``python`` block from docs/TUTORIAL.md and executes
them in order in a shared namespace, so the tutorial can never drift from
the library's actual API.
"""

from __future__ import annotations

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_blocks() -> list:
    text = TUTORIAL.read_text()
    return _BLOCK_RE.findall(text)


class TestTutorial:
    def test_tutorial_has_code_blocks(self):
        assert len(extract_blocks()) >= 5

    def test_all_blocks_execute_in_order(self, capsys):
        namespace: dict = {}
        for i, block in enumerate(extract_blocks(), start=1):
            try:
                exec(compile(block, "tutorial-block-%d" % i, "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail("tutorial block %d failed: %r\n%s" % (i, exc, block))
        # The final block printed the static vs bionav comparison.
        out = capsys.readouterr().out
        assert "->" in out
