"""Unit tests for repro.core.navigation_tree (maximum embedding)."""

from __future__ import annotations

import pytest

from repro.core.navigation_tree import NavigationTree
from repro.hierarchy.concept import ConceptHierarchy


@pytest.fixture()
def chain_hierarchy() -> ConceptHierarchy:
    # root -> a -> b -> c, plus root -> d
    h = ConceptHierarchy(root_label="root")
    a = h.add_child(0, "a")  # 1
    b = h.add_child(a, "b")  # 2
    h.add_child(b, "c")      # 3
    h.add_child(0, "d")      # 4
    return h


class TestMaximumEmbedding:
    def test_empty_internal_node_is_spliced_out(self, chain_hierarchy):
        # a and b empty, c annotated: c becomes a direct child of the root.
        tree = NavigationTree.build(chain_hierarchy, {3: {10}})
        assert set(tree.nodes()) == {0, 3}
        assert tree.parent(3) == 0

    def test_empty_leaf_is_dropped(self, chain_hierarchy):
        tree = NavigationTree.build(chain_hierarchy, {1: {10}})
        assert set(tree.nodes()) == {0, 1}

    def test_root_kept_even_when_empty(self, chain_hierarchy):
        tree = NavigationTree.build(chain_hierarchy, {4: {10}})
        assert tree.root == 0
        assert tree.results(0) == frozenset()

    def test_intermediate_annotated_node_is_kept(self, chain_hierarchy):
        tree = NavigationTree.build(chain_hierarchy, {2: {10}, 3: {11}})
        assert tree.parent(3) == 2
        assert tree.parent(2) == 0

    def test_annotations_with_empty_sets_treated_as_empty(self, chain_hierarchy):
        tree = NavigationTree.build(chain_hierarchy, {1: set(), 3: {10}})
        assert 1 not in tree
        assert 3 in tree

    def test_preserves_ancestor_descendant_relationships(self, fragment_hierarchy, fragment_tree):
        # Any two kept nodes related in the hierarchy stay related (and in
        # the same direction) in the embedded tree.
        nodes = fragment_tree.nodes()
        for a in nodes:
            for b in nodes:
                if a == b:
                    continue
                hier = fragment_hierarchy.is_ancestor(a, b)
                embedded = fragment_tree.is_tree_ancestor(a, b)
                assert hier == embedded

    def test_no_empty_nodes_except_root(self, fragment_tree):
        for node in fragment_tree.nodes():
            if node != fragment_tree.root:
                assert fragment_tree.results(node)

    def test_all_annotated_nodes_kept(self, fragment_tree, fragment_annotations):
        for node in fragment_annotations:
            assert node in fragment_tree


class TestResults:
    def test_direct_results(self, fragment_tree, fragment_hierarchy):
        apoptosis = fragment_hierarchy.by_label("Apoptosis")
        assert len(fragment_tree.results(apoptosis)) == 35

    def test_subtree_results_are_distinct_union(self, fragment_tree, fragment_hierarchy):
        cell_death = fragment_hierarchy.by_label("Cell Death")
        # Apoptosis (1..35) ∪ Autophagy {36,37,38} ∪ Necrosis {39,40}
        # ∪ Cell Death {1,2,41,42} = 1..42 → 42 distinct.
        assert len(fragment_tree.subtree_results(cell_death)) == 42

    def test_subtree_results_at_root_covers_everything(
        self, fragment_tree, fragment_annotations
    ):
        everything = set()
        for ids in fragment_annotations.values():
            everything |= ids
        assert fragment_tree.all_results() == frozenset(everything)

    def test_distinct_results_over_node_subset(self, fragment_tree, fragment_hierarchy):
        a = fragment_hierarchy.by_label("Autophagy")
        n = fragment_hierarchy.by_label("Necrosis")
        assert fragment_tree.distinct_results([a, n]) == frozenset({36, 37, 38, 39, 40})

    def test_results_of_unknown_node_raise(self, fragment_tree):
        with pytest.raises(KeyError):
            fragment_tree.results(10_000)


class TestStatistics:
    def test_size(self, fragment_tree, fragment_annotations):
        # All annotated nodes + root (no annotated node is an empty split).
        assert fragment_tree.size() == len(fragment_annotations) + 1

    def test_citations_with_duplicates_is_sum_of_attachments(
        self, fragment_tree, fragment_annotations
    ):
        expected = sum(len(ids) for ids in fragment_annotations.values())
        assert fragment_tree.citations_with_duplicates() == expected

    def test_height_positive(self, fragment_tree):
        assert fragment_tree.height() >= 2

    def test_max_width_at_least_top_level(self, fragment_tree):
        assert fragment_tree.max_width() >= len(fragment_tree.children(fragment_tree.root))

    def test_tree_depth(self, fragment_tree, fragment_hierarchy):
        assert fragment_tree.tree_depth(fragment_tree.root) == 0
        apoptosis = fragment_hierarchy.by_label("Apoptosis")
        parent = fragment_tree.parent(apoptosis)
        assert fragment_tree.tree_depth(apoptosis) == fragment_tree.tree_depth(parent) + 1


class TestTraversal:
    def test_iter_dfs_starts_at_root(self, fragment_tree):
        order = list(fragment_tree.iter_dfs())
        assert order[0] == fragment_tree.root
        assert len(order) == fragment_tree.size()

    def test_edges_count(self, fragment_tree):
        assert len(list(fragment_tree.edges())) == fragment_tree.size() - 1

    def test_subtree_nodes(self, fragment_tree, fragment_hierarchy):
        cell_death = fragment_hierarchy.by_label("Cell Death")
        members = fragment_tree.subtree_nodes(cell_death)
        labels = {fragment_tree.label(n) for n in members}
        assert labels == {"Cell Death", "Autophagy", "Apoptosis", "Necrosis"}


class TestPositionalIndices:
    """The precomputed preorder/depth/subtree-size indices (O(1) queries)."""

    @pytest.fixture()
    def random_tree(self):
        import random

        rng = random.Random(11)
        h = ConceptHierarchy(root_label="root")
        nodes = [0]
        for i in range(60):
            nodes.append(h.add_child(rng.choice(nodes), "n%d" % i))
        annotations = {
            n: {rng.randrange(200) for _ in range(rng.randint(0, 4))}
            for n in nodes
        }
        return NavigationTree.build(h, annotations)

    def test_depth_matches_parent_chain_walk(self, random_tree):
        for node in random_tree.nodes():
            depth = 0
            cursor = node
            while random_tree.parent(cursor) != -1:
                cursor = random_tree.parent(cursor)
                depth += 1
            assert random_tree.tree_depth(node) == depth

    def test_subtree_size_matches_subtree_nodes(self, random_tree):
        for node in random_tree.nodes():
            assert random_tree.subtree_size(node) == len(
                random_tree.subtree_nodes(node)
            )

    def test_is_tree_ancestor_matches_naive_walk(self, random_tree):
        nodes = random_tree.nodes()
        for ancestor in nodes:
            for node in nodes:
                cursor = node
                naive = False
                while cursor != -1:
                    if cursor == ancestor:
                        naive = True
                        break
                    cursor = random_tree.parent(cursor)
                assert random_tree.is_tree_ancestor(ancestor, node) == naive

    def test_iter_dfs_subtree_is_contiguous_preorder_slice(self, random_tree):
        full = list(random_tree.iter_dfs())
        for node in random_tree.nodes():
            sub = list(random_tree.iter_dfs(node))
            start = full.index(node)
            assert full[start : start + len(sub)] == sub

    def test_subtree_size_unknown_node_raises(self, random_tree):
        with pytest.raises(KeyError):
            random_tree.subtree_size(10_000)

    def test_deep_chain_does_not_hit_recursion_limit(self):
        # 2,000 annotated nodes in a single chain: the iterative embedding
        # and index construction must not recurse.
        h = ConceptHierarchy(root_label="root")
        node = 0
        annotations = {}
        for i in range(2000):
            node = h.add_child(node, "deep%d" % i)
            annotations[node] = {i}
        tree = NavigationTree.build(h, annotations)
        assert tree.size() == 2001
        assert tree.height() == 2000
        assert tree.tree_depth(node) == 2000
        assert tree.is_tree_ancestor(tree.root, node)
        assert len(tree.subtree_results(tree.root)) == 2000
