"""Unit tests for the streaming substrate builder and its stores.

Covers the offline build (CSR consistency, counts, determinism gate),
the ``MmapStore`` reopening path (zero-copy arrays, pickle-by-path,
hierarchy round-trip), the synthetic chunk stream, the build CLI, and
the streaming corpus persistence/loader paths the builder ingests from.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.corpus.citation import Citation
from repro.corpus.loader import stream_medline_text
from repro.corpus.medline import MedlineDatabase
from repro.corpus.persistence import (
    load_medline_jsonl,
    read_citations_jsonl,
    save_medline_jsonl,
    write_citations_jsonl,
)
from repro.hierarchy.generator import (
    MESH_2008_SEED,
    generate_hierarchy,
    mesh_2008_hierarchy,
)
from repro.substrate import (
    MmapStore,
    SubstrateBuilder,
    SynthSpec,
    citation_chunks,
    synthetic_background,
    synthetic_chunks,
)


@pytest.fixture(scope="module")
def small_hierarchy():
    return generate_hierarchy(target_size=120, seed=7)


def toy_citations(n=400, num_concepts=120, seed=3):
    rng = np.random.default_rng(seed)
    citations = []
    for i in range(n):
        concepts = tuple(
            sorted(set(rng.integers(0, num_concepts, size=rng.integers(1, 9)).tolist()))
        )
        citations.append(
            Citation(
                pmid=20_000_000 + i,
                title="Citation %d" % i,
                year=int(1990 + (i % 19)),
                index_concepts=concepts,
            )
        )
    return citations


@pytest.fixture(scope="module")
def built_dir(tmp_path_factory, small_hierarchy):
    out = tmp_path_factory.mktemp("substrate")
    citations = toy_citations()
    background = {c: 100 + c for c in range(len(small_hierarchy))}
    builder = SubstrateBuilder(str(out), num_concepts=len(small_hierarchy))
    manifest = builder.build(
        citation_chunks(iter(citations), chunk_size=64),
        hierarchy=small_hierarchy,
        background=background,
        meta={"seed": 3},
    )
    return out, citations, background, manifest


class TestBuilder:
    def test_manifest_counts(self, built_dir):
        _, citations, _, manifest = built_dir
        assert manifest.citations == len(citations)
        assert manifest.pairs == sum(len(set(c.concepts)) for c in citations)
        assert len(manifest.digest) == 64

    def test_csr_tables_cross_consistent(self, built_dir):
        out, citations, _, _ = built_dir
        store = MmapStore(str(out))
        by_pmid = {c.pmid: tuple(sorted(set(c.concepts))) for c in citations}
        for citation in citations[::37]:
            assert store.concepts_of(citation.pmid) == by_pmid[citation.pmid]
        # concept-major view inverts the citation-major view exactly
        concept = citations[0].concepts[0]
        members = store.citations_for_concept(concept)
        expected = sorted(p for p, cs in by_pmid.items() if concept in cs)
        assert members.tolist() == expected
        # bitmap agrees with the CSR ordinals
        ordinals = store.concept_bitmap(concept).to_array()
        assert np.asarray(store.pmid_array()[ordinals.astype(np.int64)]).tolist() == expected

    def test_counts_and_lt(self, built_dir):
        out, citations, background, _ = built_dir
        store = MmapStore(str(out))
        concept = citations[5].concepts[-1]
        n = sum(1 for c in citations if concept in c.concepts)
        assert store.result_count(concept) == n
        assert store.medline_count(concept) == n + background[concept]

    def test_determinism_gate_same_seed_same_digest(self, tmp_path, small_hierarchy):
        background = synthetic_background(len(small_hierarchy), seed=5)
        digests = []
        for name in ("a", "b"):
            builder = SubstrateBuilder(
                str(tmp_path / name), num_concepts=len(small_hierarchy)
            )
            spec = SynthSpec(
                citations=2000, num_concepts=len(small_hierarchy), seed=5, chunk_size=256
            )
            manifest = builder.build(
                synthetic_chunks(spec),
                hierarchy=small_hierarchy,
                background=background,
                meta={"seed": 5},
            )
            digests.append(manifest.digest)
        assert digests[0] == digests[1]
        manifest_a = json.loads((tmp_path / "a" / "manifest.json").read_text())
        manifest_b = json.loads((tmp_path / "b" / "manifest.json").read_text())
        assert manifest_a["files"] == manifest_b["files"]

    def test_rejects_unsorted_pmids(self, tmp_path, small_hierarchy):
        citations = toy_citations(20)
        citations.reverse()
        builder = SubstrateBuilder(str(tmp_path), num_concepts=len(small_hierarchy))
        with pytest.raises(ValueError):
            builder.build(citation_chunks(iter(citations)))

    def test_rejects_out_of_range_concepts(self, tmp_path):
        citations = [Citation(pmid=1, title="x", index_concepts=(999,))]
        builder = SubstrateBuilder(str(tmp_path), num_concepts=10)
        with pytest.raises(ValueError):
            builder.build(citation_chunks(iter(citations)))

    def test_empty_stream_builds_empty_store(self, tmp_path):
        builder = SubstrateBuilder(str(tmp_path), num_concepts=10)
        manifest = builder.build(iter(()))
        store = MmapStore(str(tmp_path))
        assert manifest.citations == 0 and len(store) == 0
        assert store.boolean_and([3]).size == 0


class TestMmapStore:
    def test_manifest_digest_and_info(self, built_dir):
        out, citations, _, manifest = built_dir
        store = MmapStore(str(out))
        assert store.manifest_digest == manifest.digest
        info = store.store_info()
        assert info["backend"] == "mmap"
        assert info["citations"] == len(citations)
        assert info["manifest"] == manifest.digest

    def test_arrays_are_memory_mapped(self, built_dir):
        out, _, _, _ = built_dir
        store = MmapStore(str(out))
        assert isinstance(store.pmid_array(), np.memmap)

    def test_pickle_reopens_by_path(self, built_dir):
        out, citations, _, manifest = built_dir
        store = MmapStore(str(out))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.path == store.path
        assert clone.manifest_digest == manifest.digest
        assert clone.get(citations[0].pmid).pmid == citations[0].pmid

    def test_hierarchy_round_trips(self, built_dir, small_hierarchy):
        out, _, _, _ = built_dir
        store = MmapStore(str(out))
        assert store.hierarchy().to_records() == small_hierarchy.to_records()

    def test_unknown_pmid_raises(self, built_dir):
        out, _, _, _ = built_dir
        store = MmapStore(str(out))
        with pytest.raises(KeyError):
            store.get(1)
        assert 1 not in store

    def test_boolean_and_matches_set_oracle(self, built_dir):
        out, citations, _, _ = built_dir
        store = MmapStore(str(out))
        a, b = citations[0].concepts[0], citations[1].concepts[-1]
        expected = sorted(
            c.pmid for c in citations if a in c.concepts and b in c.concepts
        )
        assert store.boolean_and([a, b]).tolist() == expected


class TestSynthStream:
    def test_chunks_are_valid_builder_input(self):
        spec = SynthSpec(citations=1000, num_concepts=500, seed=1, chunk_size=128)
        total = 0
        last = -1
        for chunk in synthetic_chunks(spec):
            total += chunk.pmids.size
            assert int(chunk.pmids[0]) > last
            last = int(chunk.pmids[-1])
            assert int(chunk.lengths.sum()) == chunk.concepts.size
            assert chunk.lengths.min() >= 1
        assert total == 1000

    def test_stream_is_reproducible(self):
        spec = SynthSpec(citations=300, num_concepts=200, seed=9, chunk_size=64)
        first = [c.concepts.tolist() for c in synthetic_chunks(spec)]
        second = [c.concepts.tolist() for c in synthetic_chunks(spec)]
        assert first == second

    def test_background_is_deterministic(self):
        assert np.array_equal(
            synthetic_background(100, seed=2), synthetic_background(100, seed=2)
        )


class TestMesh2008Preset:
    def test_deterministic_and_mesh_shaped(self):
        first = mesh_2008_hierarchy()
        second = mesh_2008_hierarchy(seed=MESH_2008_SEED)
        assert len(first) == len(second)
        assert first.to_records()[:100] == second.to_records()[:100]
        # MeSH 2008 scale: ~48k descriptors (paper §VII).
        assert 40_000 <= len(first) <= 56_000

    def test_exposed_via_workload_scenarios(self):
        from repro.workload.scenarios import paper_scale_hierarchy

        hierarchy = paper_scale_hierarchy()
        assert len(hierarchy) == len(mesh_2008_hierarchy())


class TestStreamingPersistence:
    def test_write_read_round_trip_streams(self):
        citations = toy_citations(50)
        buffer = io.StringIO()
        written = write_citations_jsonl(
            iter(citations), buffer, background_counts={3: 77}
        )
        assert written == 50
        background, stream = read_citations_jsonl(io.StringIO(buffer.getvalue()))
        assert background == {3: 77}
        assert next(iter(stream)).pmid == citations[0].pmid

    def test_shims_match_streaming_bytes(self):
        medline = MedlineDatabase(background_counts={1: 5})
        medline.add_all(toy_citations(20))
        legacy, streaming = io.StringIO(), io.StringIO()
        with pytest.warns(DeprecationWarning):
            save_medline_jsonl(medline, legacy)
        write_citations_jsonl(
            medline.iter_citations(), streaming, medline.background_counts()
        )
        assert legacy.getvalue() == streaming.getvalue()
        with pytest.warns(DeprecationWarning):
            restored = load_medline_jsonl(io.StringIO(legacy.getvalue()))
        assert restored.pmids() == medline.pmids()

    def test_jsonl_stream_feeds_builder(self, tmp_path, small_hierarchy):
        citations = toy_citations(100)
        buffer = io.StringIO()
        write_citations_jsonl(iter(citations), buffer)
        _, stream = read_citations_jsonl(io.StringIO(buffer.getvalue()))
        builder = SubstrateBuilder(str(tmp_path), num_concepts=len(small_hierarchy))
        manifest = builder.build(citation_chunks(stream, chunk_size=16))
        assert manifest.citations == 100


class TestStreamingLoader:
    def test_stream_matches_eager_parse(self):
        text = (
            "PMID- 100\nTI  - First title\nDP  - 2005\n\n"
            "PMID- 200\nTI  - Second title\nDP  - 2007 Feb\n\n"
        )
        streamed = list(stream_medline_text(io.StringIO(text)))
        assert [c.pmid for c in streamed] == [100, 200]
        assert streamed[1].year == 2007

    def test_stream_is_lazy(self):
        def lines():
            yield "PMID- 1\n"
            yield "TI  - ok\n"
            yield "\n"
            raise AssertionError("second record must not be pulled eagerly")

        stream = stream_medline_text(lines())
        assert next(stream).pmid == 1


class TestBuildCli:
    def test_cli_builds_and_reports(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.substrate.build",
                "--out",
                str(tmp_path / "cli"),
                "--citations",
                "500",
                "--seed",
                "4",
                "--hierarchy-size",
                "150",
            ],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        report = json.loads(result.stdout)
        assert report["citations"] == 500
        assert report["max_rss_bytes"] > 0
        assert report["disk_bytes"] > 0
        store = MmapStore(str(tmp_path / "cli"))
        assert store.manifest_digest == report["digest"]
        assert store.hierarchy() is not None
