"""Tests for repository tooling (docs generation)."""

from __future__ import annotations

import pathlib
import sys


TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS_DIR))

import gen_api_docs  # noqa: E402


class TestApiDocsGenerator:
    def test_renders_all_packages(self):
        text = gen_api_docs.render()
        for module in (
            "repro.core.heuristic",
            "repro.complexity.ted",
            "repro.eutils.client",
            "repro.storage.database",
            "repro.web.app",
        ):
            assert "## `%s`" % module in text

    def test_docstring_summaries_included(self):
        text = gen_api_docs.render()
        assert "Heuristic-ReducedOpt" in text
        assert "maximum embedding" in text.lower()

    def test_no_private_members(self):
        text = gen_api_docs.render()
        assert "`_solve" not in text
        assert "`_reduce" not in text

    def test_committed_reference_is_current(self):
        """docs/API.md must be regenerated when public APIs change."""
        committed = (TOOLS_DIR.parent / "docs" / "API.md").read_text()
        assert committed == gen_api_docs.render(), (
            "docs/API.md is stale — run `python tools/gen_api_docs.py`"
        )

    def test_first_paragraph_extraction(self):
        assert gen_api_docs.first_paragraph("Line one\nline two\n\nrest") == (
            "Line one line two"
        )
