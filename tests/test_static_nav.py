"""Unit tests for repro.core.static_nav (the baseline)."""

from __future__ import annotations


from repro.core.active_tree import ActiveTree
from repro.core.static_nav import StaticNavigation


class TestStaticNavigation:
    def test_root_expansion_reveals_all_children(self, fragment_tree):
        strategy = StaticNavigation(fragment_tree)
        active = ActiveTree(fragment_tree)
        decision = strategy.choose_cut(active, fragment_tree.root)
        expected = {(fragment_tree.root, c) for c in fragment_tree.children(fragment_tree.root)}
        assert set(decision.cut) == expected

    def test_expansion_applies_to_active_tree(self, fragment_tree):
        strategy = StaticNavigation(fragment_tree)
        active = ActiveTree(fragment_tree)
        decision = strategy.choose_cut(active, fragment_tree.root)
        active.expand(fragment_tree.root, decision.cut)
        for child in fragment_tree.children(fragment_tree.root):
            assert active.is_visible(child)

    def test_second_level_expansion(self, fragment_tree, fragment_hierarchy):
        strategy = StaticNavigation(fragment_tree)
        active = ActiveTree(fragment_tree)
        active.expand(fragment_tree.root, strategy.choose_cut(active, fragment_tree.root).cut)
        # Expand a child that has descendants.
        target = None
        for child in fragment_tree.children(fragment_tree.root):
            if active.is_expandable(child):
                target = child
                break
        assert target is not None
        decision = strategy.choose_cut(active, target)
        assert set(decision.cut) == {
            (target, c) for c in fragment_tree.children(target)
        }
        active.expand(target, decision.cut)
        for child in fragment_tree.children(target):
            assert active.is_visible(child)

    def test_upper_component_becomes_singleton(self, fragment_tree):
        # After a static expansion the expanded node keeps nothing hidden.
        strategy = StaticNavigation(fragment_tree)
        active = ActiveTree(fragment_tree)
        active.expand(fragment_tree.root, strategy.choose_cut(active, fragment_tree.root).cut)
        assert not active.is_expandable(fragment_tree.root)
        assert active.component(fragment_tree.root) == frozenset({fragment_tree.root})

    def test_reveal_count_matches_child_count(self, fragment_tree):
        strategy = StaticNavigation(fragment_tree)
        active = ActiveTree(fragment_tree)
        decision = strategy.choose_cut(active, fragment_tree.root)
        assert len(decision.cut) == len(fragment_tree.children(fragment_tree.root))

    def test_strategy_name(self, fragment_tree):
        assert StaticNavigation(fragment_tree).name == "static"
