"""Unit tests for the GoPubMed-style baseline (paper §IX)."""

from __future__ import annotations

import pytest

from repro.core.active_tree import ActiveTree
from repro.core.gopubmed import GoPubMedNavigation
from repro.core.simulator import navigate_to_target


class TestCategoryBar:
    def test_root_expansion_reveals_all_categories(self, fragment_tree):
        strategy = GoPubMedNavigation(fragment_tree)
        active = ActiveTree(fragment_tree)
        decision = strategy.choose_cut(active, fragment_tree.root)
        revealed = {child for _, child in decision.cut}
        assert revealed == set(fragment_tree.children(fragment_tree.root))

    def test_custom_categories(self, fragment_tree, fragment_hierarchy):
        cell_death = fragment_hierarchy.by_label("Cell Death")
        strategy = GoPubMedNavigation(fragment_tree, categories=[cell_death])
        active = ActiveTree(fragment_tree)
        decision = strategy.choose_cut(active, fragment_tree.root)
        assert decision.cut == ((fragment_tree.parent(cell_death), cell_death),)

    def test_unknown_category_rejected(self, fragment_tree):
        with pytest.raises(ValueError):
            GoPubMedNavigation(fragment_tree, categories=[987654])

    def test_top_k_validation(self, fragment_tree):
        with pytest.raises(ValueError):
            GoPubMedNavigation(fragment_tree, top_k=0)


class TestTopKChildren:
    def test_non_root_expansion_reveals_top_k_by_count(
        self, fragment_tree, fragment_hierarchy
    ):
        strategy = GoPubMedNavigation(fragment_tree, top_k=2)
        active = ActiveTree(fragment_tree)
        active.expand(fragment_tree.root, strategy.choose_cut(active, fragment_tree.root).cut)
        cell_death = fragment_hierarchy.by_label("Cell Death")
        parent = active.containing_root(cell_death)
        decision = strategy.choose_cut(active, parent)
        assert 1 <= len(decision.cut) <= 2
        revealed_counts = [
            len(fragment_tree.subtree_results(child)) for _, child in decision.cut
        ]
        all_counts = sorted(
            (
                len(fragment_tree.subtree_results(c))
                for c in fragment_tree.children(parent)
            ),
            reverse=True,
        )
        assert revealed_counts == all_counts[: len(revealed_counts)]

    def test_repeat_expansion_pages_remaining_children(self, fragment_tree):
        strategy = GoPubMedNavigation(fragment_tree, top_k=1)
        active = ActiveTree(fragment_tree)
        active.expand(fragment_tree.root, strategy.choose_cut(active, fragment_tree.root).cut)
        # Pick a visible category with multiple children.
        node = max(
            (n for n in active.component_roots() if n != fragment_tree.root),
            key=lambda n: len(fragment_tree.children(n)),
        )
        first = strategy.choose_cut(active, node)
        active.expand(node, first.cut)
        if active.is_expandable(node):
            second = strategy.choose_cut(active, node)
            assert {c for _, c in first.cut}.isdisjoint({c for _, c in second.cut})


class TestNavigation:
    def test_reaches_target(self, fragment_tree, fragment_hierarchy):
        strategy = GoPubMedNavigation(fragment_tree, top_k=3)
        target = fragment_hierarchy.by_label("Apoptosis")
        outcome = navigate_to_target(fragment_tree, strategy, target)
        assert outcome.reached

    def test_reaches_target_on_workload_tree(self, small_workload):
        prepared = small_workload.prepare("varenicline")
        strategy = GoPubMedNavigation(prepared.tree)
        outcome = navigate_to_target(
            prepared.tree, strategy, prepared.target_node, show_results=False
        )
        assert outcome.reached
