"""Concurrency tests for the ``repro.serving`` runtime.

The suite hammers the primitives from many threads: single-flight cache
builds must collapse to one factory call, overload and deadline misses
must shed cleanly (503 + Retry-After at the web layer), and a session's
expand log must stay consistent under interleaved EXPAND/BACKTRACK.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlencode

import pytest

from repro.bionav import BioNav
from repro.serving.admission import DeadlineExceeded, RetryLater
from repro.serving.concurrency import AtomicSolverProfile, SingleFlightCache
from repro.serving.dispatcher import WorkerPoolDispatcher
from repro.serving.runtime import ServingRuntime
from repro.serving.sessions import SessionExpired, SessionRegistry
from repro.web.app import BioNavWebApp


def run_threads(count: int, target, timeout: float = 30.0) -> List[object]:
    """Run ``target(i)`` on ``count`` threads; return results or raise."""
    results: List[object] = [None] * count
    errors: List[BaseException] = []

    def runner(i: int) -> None:
        try:
            results[i] = target(i)
        except BaseException as exc:  # propagated after join
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,), daemon=True)
        for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        assert not t.is_alive(), "worker thread did not finish"
    if errors:
        raise errors[0]
    return results


def request_page(
    app: BioNavWebApp, path: str, query: Optional[Dict[str, str]] = None
) -> Tuple[str, Dict[str, str], str]:
    """Drive the WSGI callable; returns (status, headers, body)."""
    environ = {
        "REQUEST_METHOD": "GET",
        "PATH_INFO": path,
        "QUERY_STRING": urlencode(query or {}),
    }
    captured: List[Tuple[str, List[Tuple[str, str]]]] = []

    def start_response(status: str, headers: List[Tuple[str, str]]) -> None:
        captured.append((status, headers))

    body = b"".join(app(environ, start_response)).decode("utf-8")
    status, headers = captured[0]
    return status, dict(headers), body


class TestSingleFlightCache:
    def test_concurrent_misses_build_once(self):
        cache: SingleFlightCache = SingleFlightCache(4)
        calls: List[int] = []
        barrier = threading.Barrier(16)

        def factory() -> str:
            calls.append(1)
            time.sleep(0.05)
            return "value"

        def worker(i: int) -> str:
            barrier.wait()
            return cache.get_or_create("key", factory)

        results = run_threads(16, worker)
        assert results == ["value"] * 16
        assert len(calls) == 1
        assert cache.misses == 1
        assert cache.coalesced == 15
        assert cache.hits == 0
        # A later lookup is a plain hit.
        assert cache.get_or_create("key", factory) == "value"
        assert cache.hits == 1
        assert len(calls) == 1

    def test_factory_error_reaches_waiters_and_caches_nothing(self):
        cache: SingleFlightCache = SingleFlightCache(4)
        barrier = threading.Barrier(4)

        def failing() -> str:
            time.sleep(0.05)
            raise RuntimeError("backend down")

        def worker(i: int) -> str:
            barrier.wait()
            return cache.get_or_create("key", failing)

        with pytest.raises(RuntimeError):
            run_threads(4, worker)
        assert "key" not in cache
        # The next call retries the factory rather than caching the error.
        assert cache.get_or_create("key", lambda: "recovered") == "recovered"

    def test_lru_eviction_and_counters_stay_consistent(self):
        cache: SingleFlightCache = SingleFlightCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts b
        assert "b" not in cache
        assert cache.evictions == 1
        snapshot = cache.snapshot()
        assert snapshot["size"] == 2
        assert snapshot["hits"] == 1
        assert 0.0 <= snapshot["hit_ratio"] <= 1.0
        assert cache.hit_ratio == snapshot["hit_ratio"]

    def test_counters_exact_under_contention(self):
        cache: SingleFlightCache = SingleFlightCache(8)
        cache.put("k", 0)

        def worker(i: int) -> None:
            for _ in range(500):
                cache.get("k")

        run_threads(8, worker)
        # 8 threads x 500 locked lookups: nothing lost to races.
        assert cache.hits == 8 * 500


class TestAtomicSolverProfile:
    def test_concurrent_records_all_land(self):
        profile = AtomicSolverProfile()

        def worker(i: int) -> None:
            for j in range(200):
                profile.record(node=i, seconds=0.001, reduced_size=5)

        run_threads(8, worker)
        assert len(profile) == 1600
        summary = profile.summary()
        assert summary["expands"] == 1600
        assert summary["p95_ms"] >= summary["p50_ms"] >= 0.0


class TestSessionRegistry:
    def test_expired_vs_unknown_classification(self):
        registry = SessionRegistry(1)
        first = registry.create("q", object(), object())  # type: ignore[arg-type]
        second = registry.create("q", object(), object())  # type: ignore[arg-type]
        with pytest.raises(SessionExpired):
            with registry.checkout(first):
                pass
        with pytest.raises(KeyError):
            with registry.checkout("s999999"):
                pass
        with registry.checkout(second) as entry:
            assert entry.query == "q"
        snapshot = registry.snapshot()
        assert snapshot["created"] == 2
        assert snapshot["evicted"] == 1
        assert snapshot["expired_lookups"] == 1


class TestDispatcher:
    def test_results_and_exceptions_propagate(self):
        with WorkerPoolDispatcher(2, max_queue=4) as pool:
            assert pool.call(lambda: 42) == 42
            with pytest.raises(ZeroDivisionError):
                pool.call(lambda: 1 // 0)
            stats = pool.stats()
            assert stats.completed == 2
            assert stats.in_flight == 0

    def test_overload_sheds_with_retry_after(self):
        release = threading.Event()
        started = threading.Event()

        def occupy() -> None:
            started.set()
            release.wait(10)

        with WorkerPoolDispatcher(1, max_queue=1, retry_after=2.0) as pool:
            first = threading.Thread(target=lambda: pool.call(occupy), daemon=True)
            first.start()
            assert started.wait(5)
            # Fill the single queue slot.
            second = threading.Thread(
                target=lambda: pool.call(lambda: None), daemon=True
            )
            second.start()
            deadline = time.monotonic() + 5
            while pool.stats().queue_depth < 1:
                assert time.monotonic() < deadline, "queue never filled"
                time.sleep(0.005)
            with pytest.raises(RetryLater) as excinfo:
                pool.call(lambda: None)
            assert excinfo.value.retry_after == 2.0
            release.set()
            first.join(5)
            second.join(5)
            stats = pool.stats()
            assert stats.shed_overload == 1
            assert stats.queue_depth == 0

    def test_deadline_exceeded_while_queued(self):
        release = threading.Event()
        started = threading.Event()

        def occupy() -> None:
            started.set()
            release.wait(10)

        with WorkerPoolDispatcher(1, max_queue=4) as pool:
            first = threading.Thread(target=lambda: pool.call(occupy), daemon=True)
            first.start()
            assert started.wait(5)
            holder: List[BaseException] = []

            def doomed() -> None:
                try:
                    pool.call(lambda: None, deadline=0.05)
                except BaseException as exc:
                    holder.append(exc)

            second = threading.Thread(target=doomed, daemon=True)
            second.start()
            time.sleep(0.2)  # let the deadline lapse while queued
            release.set()
            first.join(5)
            second.join(5)
            assert holder and isinstance(holder[0], DeadlineExceeded)
            stats = pool.stats()
            assert stats.shed_deadline == 1
            assert stats.completed == 1  # only the occupier ran


@pytest.fixture()
def bionav(small_workload) -> BioNav:
    return BioNav(small_workload.database, small_workload.entrez)


class TestRuntimeSingleFlight:
    def test_16_concurrent_identical_searches_build_one_tree(self, bionav, monkeypatch):
        from repro.pipeline.stages import NavTreeStage

        builds: List[str] = []
        original = NavTreeStage.build

        def counting_build(snapshot, results, key):
            builds.append(results.query)
            time.sleep(0.05)  # widen the race window
            return original(snapshot, results, key)

        monkeypatch.setattr(NavTreeStage, "build", staticmethod(counting_build))
        with ServingRuntime(bionav, workers=16, max_queue=32) as runtime:
            barrier = threading.Barrier(16)

            def worker(i: int) -> str:
                barrier.wait()
                return runtime.search("prothymosin").session

            sids = run_threads(16, worker)
            assert len(builds) == 1, "tree must be built exactly once"
            assert len(set(sids)) == 16
            # The 15 losers either coalesced onto the in-flight build or
            # (if scheduled late) hit the freshly cached tree.
            assert runtime.queries.misses == 1
            assert runtime.queries.hits + runtime.queries.coalesced == 15
            assert runtime.pipeline.stage_stats()["nav_tree"]["builds"] == 1
            # Zero lost sessions: every issued id still answers.
            for sid in sids:
                assert runtime.view(sid).rows


class TestPipelineStatsAcrossQueries:
    def test_hierarchy_stage_is_shared_across_distinct_queries(self, bionav):
        """Two different keywords build two trees but one hierarchy
        snapshot — the per-stage counters in ``stats()`` prove the
        sharing (the acceptance criterion for the staged pipeline)."""
        with ServingRuntime(bionav, workers=4, max_queue=16) as runtime:
            runtime.search("prothymosin")
            runtime.search("varenicline")
            stages = runtime.stats()["pipeline"]
            assert stages["hierarchy"]["misses"] == 1
            assert stages["hierarchy"]["hits"] >= 1
            assert stages["hierarchy"]["builds"] == 1
            assert stages["results"]["misses"] == 2
            assert stages["nav_tree"]["builds"] == 2
            assert stages["active_tree"]["runs"] == 2
            for stage in ("hierarchy", "results", "nav_tree"):
                assert stages[stage]["build_seconds_total"] >= 0.0

    def test_repeat_query_hits_every_shared_stage(self, bionav):
        with ServingRuntime(bionav, workers=4, max_queue=16) as runtime:
            runtime.search("prothymosin")
            runtime.search("prothymosin")
            stages = runtime.stats()["pipeline"]
            assert stages["nav_tree"]["builds"] == 1
            assert stages["nav_tree"]["hits"] == 1
            assert stages["results"]["hits"] >= 1


class TestRuntimeSessionSerialization:
    def test_interleaved_expand_backtrack_stays_consistent(self, bionav):
        with ServingRuntime(bionav, workers=8, max_queue=64) as runtime:
            sid = runtime.search("prothymosin").session
            root = runtime.view(sid).rows[0].node
            conflicts: List[int] = []

            def worker(i: int) -> None:
                for step in range(25):
                    try:
                        if (i + step) % 2 == 0:
                            runtime.expand(sid, root)
                        else:
                            runtime.backtrack(sid)
                    except ValueError:
                        # Another thread expanded first; a legitimate
                        # 400 for this request, not corruption.
                        conflicts.append(i)

            run_threads(8, worker)
            # The per-session lock kept the log and the tree in step.
            with runtime.sessions.checkout(sid) as entry:
                session = entry.session
                assert session.active.expansions_performed == len(
                    session.expand_log
                )
                assert session.visualize()
            # Drain every expansion; the session must return to the root.
            for _ in range(300):
                with runtime.sessions.checkout(sid) as entry:
                    if entry.session.active.expansions_performed == 0:
                        break
                runtime.backtrack(sid)
            final = runtime.view(sid)
            assert len(final.rows) == 1
            with runtime.sessions.checkout(sid) as entry:
                assert entry.session.expand_log == []


class TestWebShedding:
    def test_deadline_exceeded_returns_503(self, bionav):
        app = BioNavWebApp(
            bionav, workers=1, max_queue=4, deadline=0.05, backend_latency=0.3
        )
        try:
            outcome: List[Tuple[str, Dict[str, str], str]] = []

            def occupier() -> None:
                outcome.append(request_page(app, "/api/search", {"q": "a"}))

            first = threading.Thread(target=occupier, daemon=True)
            first.start()
            deadline = time.monotonic() + 5
            while app.runtime.dispatcher.stats().in_flight < 1:
                assert time.monotonic() < deadline, "occupier never started"
                time.sleep(0.005)
            status, headers, body = request_page(
                app, "/api/search", {"q": "prothymosin"}
            )
            first.join(5)
            assert status == "503 Service Unavailable"
            assert headers["Retry-After"] == "1"
            assert json.loads(body)["error_code"] == "deadline_exceeded"
            assert app.runtime.dispatcher.stats().shed_deadline == 1
            # The occupying request itself completed fine.
            assert outcome[0][0] == "200 OK"
        finally:
            app.close()

    def test_overload_returns_503_with_retry_after(self, bionav):
        app = BioNavWebApp(bionav, workers=1, max_queue=1, backend_latency=0.6)
        try:
            threads = [
                threading.Thread(
                    target=lambda: request_page(app, "/api/search", {"q": "a"}),
                    daemon=True,
                )
                for _ in range(2)
            ]
            # Occupy the single worker, then fill the single queue slot;
            # sequencing against observed state keeps the test determinate.
            threads[0].start()
            deadline = time.monotonic() + 5
            while app.runtime.dispatcher.stats().in_flight < 1:
                assert time.monotonic() < deadline, "occupier never started"
                time.sleep(0.005)
            threads[1].start()
            while app.runtime.dispatcher.stats().queue_depth < 1:
                assert time.monotonic() < deadline, "queue never filled"
                time.sleep(0.005)
            status, headers, body = request_page(
                app, "/api/search", {"q": "prothymosin"}
            )
            for t in threads:
                t.join(5)
            assert status == "503 Service Unavailable"
            assert int(headers["Retry-After"]) >= 1
            payload = json.loads(body)
            assert payload["error_code"] == "overloaded"
            assert payload["retry_after"] >= 1
            stats = app.runtime.stats()
            assert stats["serving"]["shed"]["overload"] == 1
            assert app.runtime.health()["status"] in ("ok", "overloaded")
        finally:
            app.close()


class TestStatsAliases:
    def test_hit_rate_is_deprecated_alias_of_hit_ratio(self, bionav):
        """``query_cache.hit_rate`` must track canonical ``hit_ratio``
        exactly until its scheduled removal — dashboards read either."""
        with ServingRuntime(bionav, workers=2, max_queue=8) as runtime:
            runtime.search("prothymosin")
            runtime.search("prothymosin")
            cache = runtime.stats()["query_cache"]
            assert "hit_ratio" in cache
            assert "hit_rate" in cache
            assert cache["hit_rate"] == cache["hit_ratio"]
            assert cache["hit_ratio"] > 0.0


class TestShedRetryAfterDerivation:
    def test_backoff_derives_from_queueing_deadline(self, bionav):
        with ServingRuntime(bionav, deadline=2.5) as runtime:
            assert runtime.shed_retry_after == 2.5
        # A short deadline never undercuts the admission hint's floor.
        with ServingRuntime(bionav, deadline=0.05) as runtime:
            assert runtime.shed_retry_after == 1.0
        with ServingRuntime(bionav) as runtime:
            assert runtime.shed_retry_after == 1.0

    def test_deadline_503_carries_derived_retry_after(self):
        """The web layer's Retry-After is ceil(shed_retry_after), not 1."""

        class _DeadlineRuntime:
            results_page_size = 10
            shed_retry_after = 2.2

            def search(self, query):
                raise DeadlineExceeded(2.2)

            def close(self):
                pass

        app = BioNavWebApp(runtime=_DeadlineRuntime())
        try:
            status, headers, body = request_page(
                app, "/api/search", {"q": "prothymosin"}
            )
            assert status == "503 Service Unavailable"
            assert headers["Retry-After"] == "3"
            assert json.loads(body)["retry_after"] == 3
        finally:
            app.close()
