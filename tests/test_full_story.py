"""End-to-end story: every subsystem in one scenario.

Offline: generate hierarchy + corpus → persist the corpus as JSONL →
reload → harvest associations the paper's way → build the BioNav database
→ persist and reload it.  Online: search through the web interface,
replay the session's log against a locally reconstructed tree, and
produce the Markdown report.  One scenario touching each subsystem's
public seam, complementing the per-module suites.
"""

from __future__ import annotations

import re
from urllib.parse import urlencode

import pytest

from repro.bionav import BioNav
from repro.core.navigation_tree import NavigationTree
from repro.core.replay import record_session, replay_session
from repro.corpus.persistence import load_medline_jsonl, save_medline_jsonl
from repro.eutils.client import EntrezClient
from repro.search.evaluator import FieldedEngineAdapter, FieldedSearchEngine
from repro.storage.database import BioNavDatabase
from repro.storage.harvest import ConceptHarvester
from repro.web.app import BioNavWebApp


@pytest.fixture(scope="module")
def story(request, tmp_path_factory):
    workload = request.getfixturevalue("small_workload")
    tmp = tmp_path_factory.mktemp("story")

    # Corpus persistence round trip.
    corpus_path = tmp / "corpus.jsonl"
    with open(corpus_path, "w") as handle:
        save_medline_jsonl(workload.medline, handle)
    with open(corpus_path) as handle:
        medline = load_medline_jsonl(handle)

    # Offline build + database persistence round trip.
    database = BioNavDatabase.build(workload.hierarchy, medline)
    db_path = tmp / "bionav.json"
    database.save(str(db_path))
    database = BioNavDatabase.load(str(db_path), medline=medline)

    bionav = BioNav(database, EntrezClient(medline))
    return workload, medline, database, bionav


class TestOfflineStory:
    def test_reloaded_corpus_equals_original(self, story):
        workload, medline, _, _ = story
        assert medline.pmids() == workload.medline.pmids()

    def test_harvest_agrees_with_persisted_database(self, story):
        workload, medline, database, _ = story
        fielded = FieldedSearchEngine(medline, workload.hierarchy)
        harvester = ConceptHarvester(
            workload.hierarchy,
            EntrezClient(medline, engine=FieldedEngineAdapter(fielded)),
        )
        sample = [n for n in range(1, 60)]
        result = harvester.harvest(concepts=sample)
        for concept in sample:
            assert result.associations.citations_for(concept) == (
                database.associations.citations_for(concept)
            )


class TestOnlineStory:
    def test_search_navigate_replay(self, story):
        workload, _, database, bionav = story
        query = bionav.search("prothymosin")
        assert query.result_count == 313
        session = query.session
        session.expand(query.tree.root)
        expandable = [
            n for n in session.active.component_roots() if n != query.tree.root
        ]
        if expandable:
            session.expand(expandable[0])
        log = record_session(session)

        # Reconstruct the tree independently and replay.
        pmids = bionav.entrez.esearch_all("prothymosin")
        tree = NavigationTree.build(
            database.hierarchy, database.annotations_for_result(pmids)
        )
        replayed = replay_session(tree, log)
        assert set(replayed.active.visible_nodes()) == set(
            session.active.visible_nodes()
        )

    def test_web_interface_over_persisted_database(self, story):
        _, _, _, bionav = story
        app = BioNavWebApp(bionav)
        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": "/search",
            "QUERY_STRING": urlencode({"q": "follistatin"}),
        }
        captured = []
        body = b"".join(app(environ, lambda s, h: captured.append(s))).decode()
        assert captured[0] == "200 OK"
        assert "follistatin" in body
        assert re.search(r"/nav/s\d+", body)

    def test_report_generation_from_story_workload(self, story):
        workload, _, _, _ = story
        from repro.workload.report import generate_report

        text = generate_report(workload, title="Story report")
        assert "## Figure 8" in text
        assert "bootstrap CI" in text
