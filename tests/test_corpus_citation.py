"""Unit tests for repro.corpus.citation."""

from __future__ import annotations

import pytest

from repro.corpus.citation import Citation, DocSummary


def make_citation(**overrides) -> Citation:
    defaults = dict(
        pmid=1,
        title="prothymosin and apoptosis",
        abstract="We report apoptosis signaling.",
        authors=("Smith A.",),
        year=2005,
        mesh_annotations=(3, 5),
        index_concepts=(3, 5, 7, 9),
    )
    defaults.update(overrides)
    return Citation(**defaults)


class TestCitation:
    def test_valid_construction(self):
        citation = make_citation()
        assert citation.pmid == 1
        assert citation.concepts == (3, 5, 7, 9)

    def test_pmid_must_be_positive(self):
        with pytest.raises(ValueError):
            make_citation(pmid=0)
        with pytest.raises(ValueError):
            make_citation(pmid=-5)

    def test_index_must_cover_annotations(self):
        with pytest.raises(ValueError) as exc:
            make_citation(mesh_annotations=(3, 99), index_concepts=(3, 5))
        assert "99" in str(exc.value)

    def test_concepts_is_the_index_set(self):
        # The paper builds navigation trees from the wide PubMed-index
        # associations, not the narrow MEDLINE annotations (§VII).
        citation = make_citation()
        assert citation.concepts == citation.index_concepts

    def test_searchable_text_includes_title_and_abstract(self):
        citation = make_citation()
        text = citation.searchable_text()
        assert "prothymosin" in text
        assert "signaling" in text

    def test_frozen(self):
        citation = make_citation()
        with pytest.raises(AttributeError):
            citation.pmid = 2

    def test_empty_annotation_sets_allowed(self):
        citation = make_citation(mesh_annotations=(), index_concepts=())
        assert citation.concepts == ()


class TestDocSummary:
    def test_from_citation(self):
        citation = make_citation()
        summary = DocSummary.from_citation(citation)
        assert summary.pmid == citation.pmid
        assert summary.title == citation.title
        assert summary.authors == citation.authors
        assert summary.year == citation.year

    def test_summary_has_no_abstract_or_concepts(self):
        summary = DocSummary.from_citation(make_citation())
        assert not hasattr(summary, "abstract")
        assert not hasattr(summary, "index_concepts")
