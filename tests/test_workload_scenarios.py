"""Unit tests for the stress-scenario workloads."""

from __future__ import annotations

import pytest

from repro.workload.scenarios import build_scenario, scenario_names


class TestScenarioRegistry:
    def test_four_scenarios_registered(self):
        assert scenario_names() == [
            "deep_hierarchy",
            "high_duplication",
            "low_selectivity",
            "tiny_result",
        ]

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            build_scenario("nonexistent")


class TestScenarioProperties:
    @pytest.fixture(scope="class")
    def built(self):
        return {name: build_scenario(name) for name in scenario_names()}

    def test_each_scenario_has_one_resolvable_query(self, built):
        for name, workload in built.items():
            assert len(workload.queries) == 1, name
            prepared = workload.prepare(workload.queries[0].spec.keyword)
            assert len(prepared.pmids) == workload.queries[0].spec.n_citations
            assert prepared.target_node in prepared.tree

    def test_deep_scenario_is_deep(self, built):
        deep = built["deep_hierarchy"]
        prepared = deep.prepare("deep scenario")
        default_like = built["high_duplication"]
        other = default_like.prepare("duplication scenario")
        assert deep.hierarchy.depth(prepared.target_node) > default_like.hierarchy.depth(
            other.target_node
        )

    def test_low_selectivity_target_is_rare(self, built):
        workload = built["low_selectivity"]
        prepared = workload.prepare("rare target scenario")
        share = len(prepared.tree.results(prepared.target_node)) / len(prepared.pmids)
        assert share < 0.1

    def test_tiny_result_below_expand_threshold(self, built):
        workload = built["tiny_result"]
        prepared = workload.prepare("tiny scenario")
        assert len(prepared.pmids) < prepared.probs.upper_threshold
