"""Unit tests for the MeSH ASCII descriptor parser/writer."""

from __future__ import annotations

import io

import pytest

from repro.hierarchy.generator import generate_hierarchy
from repro.hierarchy.mesh_loader import (
    DescriptorRecord,
    dump_mesh_ascii,
    hierarchy_from_records,
    load_mesh_ascii,
    parse_descriptor_records,
)

SAMPLE = """\
*NEWRECORD
RECTYPE = D
MH = Biological Phenomena
MN = G04
UI = D001686

*NEWRECORD
RECTYPE = D
MH = Cell Physiology
MN = G04.335
UI = D002468

*NEWRECORD
RECTYPE = D
MH = Apoptosis
MN = G04.335.122
MN = C23.550.717.182
UI = D017209

*NEWRECORD
RECTYPE = Q
SH = metabolism
UI = Q000378
"""


class TestParse:
    def test_parses_descriptor_records(self):
        records = parse_descriptor_records(io.StringIO(SAMPLE))
        assert [r.heading for r in records] == [
            "Biological Phenomena",
            "Cell Physiology",
            "Apoptosis",
        ]

    def test_non_descriptor_records_skipped(self):
        records = parse_descriptor_records(io.StringIO(SAMPLE))
        assert all(r.unique_id.startswith("D") for r in records)

    def test_multiple_tree_numbers_kept(self):
        records = parse_descriptor_records(io.StringIO(SAMPLE))
        apoptosis = records[2]
        assert apoptosis.tree_numbers == ["G04.335.122", "C23.550.717.182"]

    def test_missing_heading_raises(self):
        bad = "*NEWRECORD\nRECTYPE = D\nUI = D000001\n"
        with pytest.raises(ValueError):
            parse_descriptor_records(io.StringIO(bad))

    def test_missing_ui_raises(self):
        bad = "*NEWRECORD\nRECTYPE = D\nMH = Something\n"
        with pytest.raises(ValueError):
            parse_descriptor_records(io.StringIO(bad))

    def test_empty_input(self):
        assert parse_descriptor_records(io.StringIO("")) == []


class TestBuildHierarchy:
    def test_structure_follows_tree_numbers(self):
        hierarchy = load_mesh_ascii(io.StringIO(SAMPLE))
        apoptosis = hierarchy.by_uid("D017209")
        assert hierarchy.label(apoptosis) == "Apoptosis"
        assert hierarchy.label(hierarchy.parent(apoptosis)) == "Cell Physiology"
        assert (
            hierarchy.label(hierarchy.parent(hierarchy.parent(apoptosis)))
            == "Biological Phenomena"
        )

    def test_polyhierarchy_duplicates_descriptor(self):
        hierarchy = load_mesh_ascii(io.StringIO(SAMPLE))
        # The C23... placement gets a suffixed uid and placeholder parents.
        second = hierarchy.by_uid("D017209.1")
        assert hierarchy.label(second) == "Apoptosis"

    def test_placeholders_materialized_for_missing_intermediates(self):
        hierarchy = load_mesh_ascii(io.StringIO(SAMPLE))
        second = hierarchy.by_uid("D017209.1")
        parent = hierarchy.parent(second)
        assert hierarchy.label(parent).startswith("[C23")

    def test_duplicate_tree_number_rejected(self):
        records = [
            DescriptorRecord("A", "D1", ["G01"]),
            DescriptorRecord("B", "D2", ["G01"]),
        ]
        with pytest.raises(ValueError):
            hierarchy_from_records(records)

    def test_record_without_tree_numbers_is_skipped(self):
        records = [DescriptorRecord("Orphan", "D9", [])]
        hierarchy = hierarchy_from_records(records)
        assert len(hierarchy) == 1  # root only


class TestRoundTrip:
    def test_dump_and_reload_preserves_structure(self):
        original = generate_hierarchy(target_size=60, seed=13)
        buffer = io.StringIO()
        written = dump_mesh_ascii(original, buffer)
        assert written == len(original) - 1
        reloaded = load_mesh_ascii(io.StringIO(buffer.getvalue()))
        assert len(reloaded) == len(original)
        # Same label multiset and same parent labels per node.
        original_edges = sorted(
            (original.label(n), original.label(original.parent(n)))
            for n in range(1, len(original))
        )
        reloaded_edges = sorted(
            (reloaded.label(n), reloaded.label(reloaded.parent(n)))
            for n in range(1, len(reloaded))
        )
        assert original_edges == reloaded_edges

    def test_dump_includes_all_fields(self):
        hierarchy = generate_hierarchy(target_size=10, seed=1)
        buffer = io.StringIO()
        dump_mesh_ascii(hierarchy, buffer)
        text = buffer.getvalue()
        assert "*NEWRECORD" in text
        assert "MH = " in text
        assert "MN = " in text
        assert "UI = " in text
