"""Unit tests for exponential runtime fitting."""

from __future__ import annotations

import pytest

from repro.analysis.runtime import fit_exponential


class TestFitExponential:
    def test_recovers_known_exponential(self):
        sizes = [4, 6, 8, 10, 12]
        times = [0.001 * (2.0 ** n) for n in sizes]
        fit = fit_exponential(sizes, times)
        assert fit.base == pytest.approx(2.0, rel=1e-6)
        assert fit.scale == pytest.approx(0.001, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_exponential([1, 2, 3], [2.0, 4.0, 8.0])
        assert fit.predict(4) == pytest.approx(16.0, rel=1e-6)

    def test_linear_data_has_base_near_one(self):
        sizes = list(range(1, 12))
        times = [0.5 * n for n in sizes]
        fit = fit_exponential(sizes, times)
        assert 1.0 < fit.base < 1.5

    def test_noise_tolerated(self):
        sizes = [4, 6, 8, 10, 12, 14]
        times = [0.001 * (2.0 ** n) * factor for n, factor in zip(sizes, (1.1, 0.9, 1.05, 0.95, 1.2, 0.85))]
        fit = fit_exponential(sizes, times)
        assert 1.7 < fit.base < 2.3
        assert fit.r_squared > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exponential([1, 2], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_exponential([1, 2, 3], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_exponential([1, 2, 3], [1.0, 0.0, 2.0])

    def test_opt_edgecut_measurements_fit_exponential(self):
        """The §VI complexity claim, measured and fitted."""
        import time

        from repro.core.opt_edgecut import CutTree, OptEdgeCut
        from repro.core.probabilities import ProbabilityModel
        from repro.core.navigation_tree import NavigationTree
        from repro.hierarchy.generator import generate_hierarchy

        sizes = []
        times = []
        for n_nodes in (6, 8, 10, 12, 14):
            hierarchy = generate_hierarchy(target_size=n_nodes * 3, seed=31)
            annotations = {}
            count = 0
            for node in hierarchy.iter_dfs():
                if node == hierarchy.root:
                    continue
                annotations[node] = set(range(count, count + 4))
                count += 1
                if count >= n_nodes - 1:
                    break
            tree = NavigationTree.build(hierarchy, annotations)
            probs = ProbabilityModel(tree, lambda n: 100)
            component = frozenset(tree.iter_dfs())
            cut_tree = CutTree.from_component(tree, probs, component, tree.root)
            started = time.perf_counter()
            OptEdgeCut(cut_tree, probs, max_nodes=16).solve()
            times.append(max(time.perf_counter() - started, 1e-6))
            sizes.append(len(cut_tree))
        fit = fit_exponential(sizes, times)
        assert fit.base > 1.3  # decidedly super-polynomial over this range


class TestSolverProfile:
    def _profile(self):
        from repro.analysis.runtime import SolverProfile

        profile = SolverProfile()
        for i, seconds in enumerate((0.010, 0.020, 0.030, 0.040)):
            profile.record(node=i, seconds=seconds, reduced_size=4 + i)
        return profile

    def test_record_and_aggregates(self):
        profile = self._profile()
        assert len(profile) == 4
        assert profile.total_seconds == pytest.approx(0.100)
        assert profile.mean_seconds == pytest.approx(0.025)

    def test_percentiles(self):
        profile = self._profile()
        assert profile.percentile_seconds(0) == pytest.approx(0.010)
        assert profile.percentile_seconds(100) == pytest.approx(0.040)
        with pytest.raises(ValueError):
            profile.percentile_seconds(101)

    def test_summary_keys_and_units(self):
        summary = self._profile().summary()
        assert summary["expands"] == 4
        assert summary["mean_ms"] == pytest.approx(25.0)
        assert summary["max_ms"] == pytest.approx(40.0)
        assert summary["mean_reduced_size"] == pytest.approx(5.5)

    def test_empty_profile_summary(self):
        from repro.analysis.runtime import SolverProfile

        summary = SolverProfile().summary()
        assert summary["expands"] == 0
        assert summary["mean_ms"] == 0.0

    def test_negative_seconds_rejected(self):
        from repro.analysis.runtime import SolverProfile

        with pytest.raises(ValueError):
            SolverProfile().record(node=1, seconds=-0.1, reduced_size=2)

    def test_growth_fit_over_records(self):
        from repro.analysis.runtime import SolverProfile

        profile = SolverProfile()
        for n in (4, 6, 8, 10, 12):
            profile.record(node=n, seconds=0.001 * (2.0 ** n), reduced_size=n)
        fit = profile.growth_fit()
        assert fit.base == pytest.approx(2.0, rel=1e-6)
