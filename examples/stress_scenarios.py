"""BioNav vs static navigation under stress corpus regimes.

Run with::

    python examples/stress_scenarios.py

Materializes the four stress scenarios (deep narrow hierarchy, heavy
duplication, near-zero target selectivity, tiny result set) and runs the
headline comparison in each — a quick robustness read beyond the Table I
defaults.
"""

from __future__ import annotations

from repro.core.heuristic import HeuristicReducedOpt
from repro.core.simulator import navigate_to_target
from repro.core.static_nav import StaticNavigation
from repro.workload.scenarios import build_scenario, scenario_names


def main() -> None:
    header = "%-20s %7s %7s %9s %9s %8s" % (
        "scenario", "cites", "tree", "static", "bionav", "improv",
    )
    print(header)
    print("-" * len(header))
    for name in scenario_names():
        workload = build_scenario(name)
        prepared = workload.prepare(workload.queries[0].spec.keyword)
        static = navigate_to_target(
            prepared.tree,
            StaticNavigation(prepared.tree),
            prepared.target_node,
            show_results=False,
        )
        bionav = navigate_to_target(
            prepared.tree,
            HeuristicReducedOpt(prepared.tree, prepared.probs),
            prepared.target_node,
            show_results=False,
        )
        improvement = 1 - bionav.navigation_cost / static.navigation_cost
        print(
            "%-20s %7d %7d %9.0f %9.0f %7.0f%%"
            % (
                name,
                len(prepared.pmids),
                prepared.tree.size(),
                static.navigation_cost,
                bionav.navigation_cost,
                100 * improvement,
            )
        )


if __name__ == "__main__":
    main()
