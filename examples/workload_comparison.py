"""BioNav vs static navigation across the full Table I workload.

Run with::

    python examples/workload_comparison.py

Reproduces the Figure 8 / Figure 9 experiment at example scale: for each
of the ten Table I queries, simulate a targeted TOPDOWN navigation to the
query's target concept under both strategies and report navigation cost
(# concepts revealed + # EXPAND actions), EXPAND counts, and per-EXPAND
latency of Heuristic-ReducedOpt.
"""

from __future__ import annotations

from repro import HeuristicReducedOpt, StaticNavigation, build_workload, navigate_to_target


def main() -> None:
    print("Materializing the Table I workload...")
    workload = build_workload(hierarchy_size=2500)

    header = "%-26s %6s | %9s %7s | %9s %7s %9s | %6s" % (
        "keyword", "cites", "static", "expands", "bionav", "expands", "avg ms", "improv",
    )
    print()
    print(header)
    print("-" * len(header))

    improvements = []
    for built in workload.queries:
        prepared = workload.prepare(built.spec.keyword)
        static = navigate_to_target(
            prepared.tree,
            StaticNavigation(prepared.tree),
            prepared.target_node,
            show_results=False,
        )
        bionav = navigate_to_target(
            prepared.tree,
            HeuristicReducedOpt(prepared.tree, prepared.probs),
            prepared.target_node,
            show_results=False,
        )
        improvement = 1 - bionav.navigation_cost / static.navigation_cost
        improvements.append(improvement)
        print(
            "%-26s %6d | %9.0f %7d | %9.0f %7d %9.2f | %5.0f%%"
            % (
                built.spec.keyword,
                len(prepared.pmids),
                static.navigation_cost,
                static.expand_actions,
                bionav.navigation_cost,
                bionav.expand_actions,
                bionav.average_expand_seconds * 1000,
                improvement * 100,
            )
        )
    print("-" * len(header))
    print(
        "Average improvement: %.0f%%   (the paper reports 85%% on live MEDLINE)"
        % (100 * sum(improvements) / len(improvements))
    )


if __name__ == "__main__":
    main()
