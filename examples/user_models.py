"""User models beyond the omniscient navigator.

Run with::

    python examples/user_models.py

Three studies on one workload query:

1. **Fallible users** — wrong expansions followed by BACKTRACK, sweeping
   the error rate, for both BioNav and static navigation;
2. **Probabilistic users** — Monte-Carlo sampling of the paper's §III
   TOPDOWN process, checked against the analytic expected-cost recursion;
3. **Related citations** — the simulated ELink neighbors of a result
   citation, via shared MeSH concepts.
"""

from __future__ import annotations

import random

from repro.core.evaluation import expected_strategy_cost
from repro.core.heuristic import HeuristicReducedOpt
from repro.core.imperfect import navigate_with_errors
from repro.core.montecarlo import estimate_expected_cost
from repro.core.static_nav import StaticNavigation
from repro.workload.builder import build_workload


def main() -> None:
    print("Materializing the workload...")
    workload = build_workload(hierarchy_size=1500)
    prepared = workload.prepare("prothymosin")
    tree, probs, target = prepared.tree, prepared.probs, prepared.target_node

    print("\n1. Fallible users (mean of 5 trials per error rate)")
    print("   %-12s %10s %10s" % ("error rate", "static", "bionav"))
    for rate in (0.0, 0.2, 0.4, 0.6):
        costs = {"static": [], "bionav": []}
        for trial in range(5):
            rng = random.Random(100 * trial + int(rate * 10))
            static = navigate_with_errors(
                tree, StaticNavigation(tree), target, rate, rng
            )
            rng = random.Random(100 * trial + int(rate * 10))
            bionav = navigate_with_errors(
                tree, HeuristicReducedOpt(tree, probs), target, rate, rng
            )
            costs["static"].append(static.navigation_cost)
            costs["bionav"].append(bionav.navigation_cost)
        print(
            "   %-12.1f %10.1f %10.1f"
            % (
                rate,
                sum(costs["static"]) / 5,
                sum(costs["bionav"]) / 5,
            )
        )

    print("\n2. Probabilistic users (Monte-Carlo vs the analytic recursion)")
    for name, strategy_factory in (
        ("static", lambda: StaticNavigation(tree)),
        ("bionav", lambda: HeuristicReducedOpt(tree, probs)),
    ):
        analytic = expected_strategy_cost(tree, probs, strategy_factory())
        mean, stderr = estimate_expected_cost(
            tree, probs, strategy_factory(), n_walks=150, seed=9
        )
        print(
            "   %-8s analytic %8.2f   sampled %8.2f ± %.2f"
            % (name, analytic, mean, stderr)
        )

    print("\n3. Related citations (simulated ELink)")
    anchor = prepared.pmids[0]
    related = workload.entrez.elink_related(anchor, retmax=5)
    anchor_title = workload.medline.get(anchor).title
    print("   anchor [%d] %s" % (anchor, anchor_title))
    for pmid in related:
        print("   ->     [%d] %s" % (pmid, workload.medline.get(pmid).title))


if __name__ == "__main__":
    main()
