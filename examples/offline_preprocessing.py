"""The off-line pre-processing pipeline (paper §VII, left half of Fig. 7).

Run with::

    python examples/offline_preprocessing.py

Demonstrates the pipeline the paper ran against live PubMed over ~20 days,
at simulation scale and in seconds:

  1. load the concept hierarchy;
  2. harvest (concept, citationId) association tuples from MEDLINE —
     including the eutils rate limit that dominated the paper's harvest;
  3. denormalize them into one row per citation;
  4. record per-concept MEDLINE-wide counts (the LT(n) statistics);
  5. persist the BioNav database to disk and reload it.
"""

from __future__ import annotations

import os
import tempfile

from repro.corpus.generator import CorpusGenerator, TopicSpec
from repro.corpus.medline import MedlineDatabase
from repro.eutils.client import EntrezClient
from repro.eutils.errors import RateLimitExceeded
from repro.hierarchy.generator import generate_hierarchy
from repro.storage.database import BioNavDatabase


def main() -> None:
    print("1. Concept hierarchy")
    hierarchy = generate_hierarchy(target_size=1200, seed=3)
    print("   %d concepts, height %d (real MeSH: ~48,000 concepts)" % (
        len(hierarchy), hierarchy.height()))

    print("\n2. MEDLINE snapshot")
    generator = CorpusGenerator(hierarchy, seed=3)
    medline = MedlineDatabase(background_counts=generator.background_counts())
    anchor = hierarchy.children(hierarchy.root)[0]
    medline.add_all(
        generator.generate_topic(
            TopicSpec(keyword="prothymosin", n_citations=120, anchors=((anchor, 1.0),))
        )
    )
    medline.add_all(generator.generate_background(80))
    print("   %d citations materialized (real MEDLINE: ~18M)" % len(medline))

    print("\n3. Rate-limited harvest (why the paper's took ~20 days)")
    limited = EntrezClient(medline, rate_limit=3)
    served = 0
    try:
        while True:
            limited.esearch("prothymosin", retmax=5)
            served += 1
    except RateLimitExceeded as exc:
        print("   after %d requests: %s" % (served, exc))
    limited.reset_quota()
    print("   quota window reset; harvesting resumes")

    print("\n4. Off-line build (associations + denormalized table + stats + index)")
    database = BioNavDatabase.build(hierarchy, medline)
    print("   association tuples:        %d" % len(database.associations))
    print("   denormalized citation rows: %d" % len(database.denormalized))
    print("   concepts with LT stats:    %d" % len(database.stats))
    sample_pmid = medline.pmids()[0]
    print("   e.g. citation %d → %d concepts" % (
        sample_pmid, len(database.denormalized.get(sample_pmid))))

    print("\n5. Persist and reload")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bionav-db.json")
        database.save(path)
        size_kb = os.path.getsize(path) / 1024
        reloaded = BioNavDatabase.load(path, medline=medline)
        print("   saved %.0f KiB → reloaded %d association tuples" % (
            size_kb, len(reloaded.associations)))
        assert list(reloaded.associations.iter_rows()) == list(
            database.associations.iter_rows()
        )
    print("\nDone: the on-line phase (see quickstart.py) runs on this database.")


if __name__ == "__main__":
    main()
