"""Interchange formats: real MeSH and MEDLINE file formats round-tripped.

Run with::

    python examples/interchange_formats.py

Shows the reproduction speaking the ecosystem's actual file formats:

1. dump the synthetic hierarchy as MeSH ASCII descriptors (``d2008.bin``
   style) and reload it;
2. dump a slice of the corpus as MEDLINE text (``.nbib``) and reload it;
3. freeze the whole corpus to JSONL and rebuild the BioNav database from
   the reloaded copy — proving a workload can be shared as plain files.
"""

from __future__ import annotations

import io

from repro.corpus.loader import dump_medline_text, load_medline_text
from repro.corpus.persistence import load_medline_jsonl, save_medline_jsonl
from repro.hierarchy.mesh_loader import dump_mesh_ascii, load_mesh_ascii
from repro.storage.database import BioNavDatabase
from repro.workload.builder import build_workload


def main() -> None:
    print("Materializing a small workload...")
    workload = build_workload(hierarchy_size=800, background_citations=40)

    print("\n1. MeSH ASCII descriptors")
    buffer = io.StringIO()
    written = dump_mesh_ascii(workload.hierarchy, buffer)
    text = buffer.getvalue()
    print("   wrote %d descriptor records (%.0f KiB)" % (written, len(text) / 1024))
    print("   sample record:")
    for line in text.splitlines()[:5]:
        print("     " + line)
    reloaded = load_mesh_ascii(io.StringIO(text))
    print("   reloaded %d concepts (match: %s)" % (
        len(reloaded), len(reloaded) == len(workload.hierarchy)))

    print("\n2. MEDLINE text (.nbib)")
    pmids = workload.entrez.esearch_all("prothymosin")[:3]
    citations = workload.medline.get_many(pmids)
    buffer = io.StringIO()
    dump_medline_text(citations, buffer, hierarchy=workload.hierarchy)
    nbib = buffer.getvalue()
    print("   sample record:")
    for line in nbib.splitlines()[:8]:
        print("     " + line)
    back = load_medline_text(io.StringIO(nbib), hierarchy=workload.hierarchy)
    print("   round-tripped %d citations (PMIDs preserved: %s)" % (
        len(back), [c.pmid for c in back] == pmids))

    print("\n3. Corpus JSONL freeze → rebuild the BioNav database")
    buffer = io.StringIO()
    count = save_medline_jsonl(workload.medline, buffer)
    print("   froze %d citations (%.0f KiB)" % (count, len(buffer.getvalue()) / 1024))
    thawed = load_medline_jsonl(io.StringIO(buffer.getvalue()))
    database = BioNavDatabase.build(workload.hierarchy, thawed)
    print("   rebuilt database: %d association tuples, %d concept stats" % (
        len(database.associations), len(database.stats)))
    original = BioNavDatabase.build(workload.hierarchy, workload.medline)
    match = list(database.associations.iter_rows()) == list(
        original.associations.iter_rows()
    )
    print("   identical to the original build: %s" % match)


if __name__ == "__main__":
    main()
