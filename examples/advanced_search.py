"""Advanced search: the PubMed-style query language over the corpus.

Run with::

    python examples/advanced_search.py

Demonstrates the fielded boolean query language — phrases, ``[ti]``/``[ab]``
text fields, and ``[mh]`` MeSH-concept queries with subtree explosion —
and then feeds a fielded result set into a BioNav navigation, showing that
the navigation machinery is agnostic to how the result set was produced.
"""

from __future__ import annotations

from repro.core.heuristic import HeuristicReducedOpt
from repro.core.navigation_tree import NavigationTree
from repro.core.probabilities import ProbabilityModel
from repro.core.session import NavigationSession
from repro.search.evaluator import FieldedSearchEngine
from repro.viz.render import render_active_tree
from repro.workload.builder import build_workload


def main() -> None:
    print("Materializing the workload...")
    workload = build_workload(hierarchy_size=1500)
    engine = FieldedSearchEngine(workload.medline, workload.hierarchy)

    queries = [
        "prothymosin",
        "prothymosin[ti]",
        "prothymosin AND expression",
        "prothymosin OR vardenafil",
        "prothymosin NOT expression",
        '"Mice, Transgenic"[mh]',
        '(prothymosin OR vardenafil) AND "Mice, Transgenic"[mh]',
    ]
    print("\nQuery language demonstration:\n")
    for query in queries:
        matches = engine.search(query)
        print("  %-55s -> %4d citations" % (query, len(matches)))

    print("\nQuery refinement suggestions (the §IX PubReMiner/XplorMed features):")
    from repro.search.suggest import suggest_concepts, suggest_terms

    pmids = sorted(engine.search("prothymosin"))
    print("  Top associated MeSH concepts:")
    for s in suggest_concepts(workload.medline, workload.hierarchy, pmids, top_k=5):
        print("    %-40s %4d (%.0f%%)" % (s.label[:40], s.count, 100 * s.fraction))
    print("  Enriched refinement terms:")
    for s in suggest_terms(workload.medline, pmids, top_k=5):
        print(
            "    %-20s in %d/%d results (score %.2f)"
            % (s.term, s.result_count, len(pmids), s.score)
        )

    print("\nNavigating a fielded result set with BioNav:")
    query = '(prothymosin OR vardenafil) AND expression'
    pmids = sorted(engine.search(query))
    print("  %r -> %d citations" % (query, len(pmids)))
    annotations = workload.database.annotations_for_result(pmids)
    tree = NavigationTree.build(workload.hierarchy, annotations)
    probs = ProbabilityModel(tree, workload.database.medline_count)
    session = NavigationSession(tree, HeuristicReducedOpt(tree, probs))
    session.expand(tree.root)
    session.expand(tree.root)
    print("\nInterface after two EXPANDs:\n")
    print(render_active_tree(session.active))
    print(
        "\nNavigation cost so far: %.0f (%d revealed + %d EXPANDs)"
        % (
            session.navigation_cost,
            session.ledger.concepts_revealed,
            session.ledger.expand_actions,
        )
    )


if __name__ == "__main__":
    main()
