"""Quickstart: build a BioNav deployment and navigate a query result.

Run with::

    python examples/quickstart.py

Materializes the Table I workload (synthetic MeSH-like hierarchy plus a
simulated MEDLINE corpus), stands up the BioNav system, issues the
paper's running-example query ("prothymosin"), and performs a few
cost-optimal EXPAND actions, printing the interface state after each.
"""

from __future__ import annotations

from repro import BioNav, build_workload
from repro.viz.render import render_active_tree


def main() -> None:
    print("Building the workload (hierarchy + corpus + BioNav database)...")
    workload = build_workload(hierarchy_size=2000)
    bionav = BioNav(workload.database, workload.entrez)

    query = bionav.search("prothymosin")
    print(
        "\nQuery %r returned %d citations, organized into a navigation tree "
        "of %d concepts (%d attachments including duplicates)."
        % (
            query.keyword,
            query.result_count,
            query.tree.size(),
            query.tree.citations_with_duplicates(),
        )
    )

    session = query.session
    print("\nInitial interface (only the root is shown):\n")
    print(render_active_tree(session.active))

    for step in range(1, 4):
        outcome = session.expand(query.tree.root)
        print(
            "\nAfter EXPAND #%d on the root (%d concepts revealed):\n"
            % (step, len(outcome.revealed))
        )
        print(render_active_tree(session.active))
        if not session.active.is_expandable(query.tree.root):
            break

    # Drill into the biggest revealed component.
    expandable = [
        n for n in session.active.component_roots() if n != query.tree.root
    ]
    if expandable:
        biggest = max(expandable, key=session.active.component_count)
        outcome = session.expand(biggest)
        print(
            "\nAfter expanding %r (%d more concepts):\n"
            % (query.tree.label(biggest), len(outcome.revealed))
        )
        print(render_active_tree(session.active))

        pmids = session.show_results(biggest)
        print("\nSHOWRESULTS on %r lists %d citations; first three:" % (
            query.tree.label(biggest), len(pmids)))
        for summary in bionav.summaries(pmids[:3]):
            print("  [%d] %s (%s, %d)" % (
                summary.pmid, summary.title, "; ".join(summary.authors[:2]), summary.year))

    print(
        "\nTotal user effort so far: %.0f "
        "(%d concepts examined + %d EXPAND clicks + %d citations listed)"
        % (
            session.total_cost,
            session.ledger.concepts_revealed,
            session.ledger.expand_actions,
            session.ledger.citations_displayed,
        )
    )


if __name__ == "__main__":
    main()
