"""The paper's Figures 1–5 walkthrough on the embedded MeSH fragment.

Run with::

    python examples/prothymosin_navigation.py

Reproduces, on the real concept labels from the paper's figures:

  * Fig. 1 — the static navigation interface (full tree, subtree counts,
    "N more nodes" truncation);
  * Fig. 3 — the EdgeCut on "Biological Phenomena..." that reveals
    Cell Death and Cell Proliferation while skipping Cell Physiology and
    Cell Growth Processes;
  * Fig. 4/2c — the active tree before/after that cut, with the upper
    component's citation count shrinking;
  * Fig. 5 — a subsequent cut on the *upper* component revealing Cell
    Growth Processes, which then re-parents Cell Proliferation.
"""

from __future__ import annotations

from repro.core.active_tree import ActiveTree
from repro.core.navigation_tree import NavigationTree
from repro.hierarchy.mesh import paper_fragment
from repro.viz.render import render_active_tree, render_navigation_tree


def build_fragment_tree():
    """The embedded fragment with a prothymosin-flavoured result set."""
    hierarchy = paper_fragment()
    label = hierarchy.by_label
    annotations = {
        # PubMed indexing attaches citations to broad concepts directly, so
        # the intermediate nodes of Fig. 1 carry their own results lists.
        label("Biological Phenomena, Cell Phenomena, and Immunity"): {500, 501},
        label("Cell Physiology"): {502, 503},
        label("Cell Growth Processes"): set(range(100, 199)),  # same as Cell Proliferation
        label("Genetic Processes"): {504},
        label("Amino Acids, Peptides, and Proteins"): {505, 506},
        label("Proteins"): {507},
        label("Nucleoproteins"): set(range(200, 226)),
        label("Apoptosis"): set(range(1, 36)),            # 35, as in Fig. 1
        label("Autophagy"): {36, 37, 38},
        label("Necrosis"): {39, 40},
        label("Cell Death"): {1, 2, 41, 42},
        label("Cell Proliferation"): set(range(100, 199)),  # 99, as in Fig. 2
        label("Cell Division"): set(range(100, 152)),       # 52, as in Fig. 1
        label("Chromatin"): set(range(200, 226)),           # 26
        label("Nucleosomes"): {200, 201, 202, 203},
        label("Heterochromatin"): {204, 205},
        label("Euchromatin"): {206, 207},
        label("Histones"): set(range(210, 240)),
        label("Transcription, Genetic"): set(range(300, 325)),  # 25
        label("Reverse Transcription"): {300, 301, 302, 303},   # 4
        label("Gene Expression"): set(range(300, 392)),         # 92
        label("Immunity, Innate"): {400, 401, 402},
        label("Cell Differentiation"): {410, 411},
    }
    return hierarchy, NavigationTree.build(hierarchy, annotations)


def main() -> None:
    hierarchy, tree = build_fragment_tree()
    label = hierarchy.by_label

    print("=" * 72)
    print("FIGURE 1 — static navigation (all children, subtree counts)")
    print("=" * 72)
    print(
        render_navigation_tree(
            tree,
            max_children=3,
            highlight=[label("Cell Proliferation"), label("Apoptosis")],
        )
    )

    active = ActiveTree(tree)

    print()
    print("=" * 72)
    print("FIGURE 3 — the EdgeCut on 'Biological Phenomena...'")
    print("=" * 72)
    bio = label("Biological Phenomena, Cell Phenomena, and Immunity")
    # First reveal the Biological Phenomena branch root itself.
    active.expand(tree.root, [(tree.root, bio)])
    print("\nActive tree after revealing the branch:\n")
    print(render_active_tree(active))
    print(
        "\n'Biological Phenomena...' component holds %d concepts and %d "
        "distinct citations."
        % (len(active.component(bio)), active.component_count(bio))
    )

    # The Fig. 3 cut: (Cell Physiology → Cell Death) and
    # (Cell Growth Processes → Cell Proliferation).
    cell_death = label("Cell Death")
    proliferation = label("Cell Proliferation")
    cut = [
        (tree.parent(cell_death), cell_death),
        (tree.parent(proliferation), proliferation),
    ]
    before = active.component_count(bio)
    active.expand(bio, cut)
    after = active.component_count(bio)

    print("\nAfter the EdgeCut (Fig. 2c / Fig. 4b):\n")
    print(render_active_tree(active, highlight=[cell_death, proliferation]))
    print(
        "\nNote the skipped middle concepts: Cell Physiology and Cell Growth"
        "\nProcesses stay hidden; the upper component count shrank %d → %d."
        % (before, after)
    )

    print()
    print("=" * 72)
    print("FIGURE 5 — EdgeCut on the UPPER component")
    print("=" * 72)
    growth = label("Cell Growth Processes")
    active.expand(bio, [(tree.parent(growth), growth)])
    print(
        "\n'Cell Growth Processes' is now revealed and becomes the parent of"
        "\nthe previously revealed 'Cell Proliferation':\n"
    )
    print(render_active_tree(active, highlight=[growth, proliferation]))


if __name__ == "__main__":
    main()
