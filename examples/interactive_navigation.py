"""Interactive BioNav session in the terminal.

Run with::

    python examples/interactive_navigation.py [keyword]

Builds the workload, runs the query (default: "prothymosin"), and drops
into a read–eval loop mirroring the paper's web interface:

    e <n>   EXPAND the n-th visible concept (its ``>>>`` hyperlink)
    s <n>   SHOWRESULTS on the n-th visible concept
    b       BACKTRACK (undo the last EXPAND)
    q       quit (prints the session's cost ledger)

When stdin is not a TTY (e.g. piped), a scripted demo sequence runs
instead, so the example is usable in CI.
"""

from __future__ import annotations

import sys

from repro import BioNav, build_workload

DEMO_COMMANDS = ["e 0", "e 0", "e 1", "s 1", "b", "q"]


def print_interface(session) -> None:
    rows = session.visualize()
    print()
    for i, row in enumerate(rows):
        marker = " >>>" if row.expandable else ""
        print("  [%2d] %s%s (%d)%s" % (i, "  " * row.depth, row.label, row.count, marker))
    print()


def main() -> None:
    keyword = sys.argv[1] if len(sys.argv) > 1 else "prothymosin"
    print("Building workload and searching for %r..." % keyword)
    workload = build_workload(hierarchy_size=1500)
    bionav = BioNav(workload.database, workload.entrez)
    query = bionav.search(keyword)
    if query.result_count == 0:
        print("No results for %r — try a Table I keyword like 'prothymosin'." % keyword)
        return
    session = query.session
    print("%d citations; navigation tree of %d concepts." % (
        query.result_count, query.tree.size()))

    interactive = sys.stdin.isatty()
    script = iter(DEMO_COMMANDS)
    while True:
        print_interface(session)
        if interactive:
            try:
                command = input("bionav> ").strip()
            except EOFError:
                break
        else:
            command = next(script, "q")
            print("bionav> %s   (scripted demo)" % command)
        if not command:
            continue
        parts = command.split()
        action = parts[0].lower()
        if action == "q":
            break
        if action == "b":
            if not session.backtrack():
                print("Nothing to undo.")
            continue
        if action in ("e", "s") and len(parts) == 2 and parts[1].isdigit():
            rows = session.visualize()
            index = int(parts[1])
            if not 0 <= index < len(rows):
                print("No visible concept #%d." % index)
                continue
            node = rows[index].node
            if action == "e":
                if not session.active.is_expandable(node):
                    print("%r has nothing hidden to reveal." % rows[index].label)
                    continue
                outcome = session.expand(node)
                print("Revealed %d concept(s)." % len(outcome.revealed))
            else:
                pmids = session.show_results(node)
                print("%d citations under %r; first five:" % (len(pmids), rows[index].label))
                for summary in bionav.summaries(pmids[:5]):
                    print("   [%d] %s" % (summary.pmid, summary.title))
            continue
        print("Commands: e <n> (expand), s <n> (show results), b (backtrack), q (quit)")

    print(
        "\nSession cost: %.0f total — %d concepts examined, %d EXPANDs, "
        "%d citations listed."
        % (
            session.total_cost,
            session.ledger.concepts_revealed,
            session.ledger.expand_actions,
            session.ledger.citations_displayed,
        )
    )


if __name__ == "__main__":
    main()
