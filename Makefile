# Developer entry points for the BioNav reproduction.

PYTHON ?= python

.PHONY: install test bench bench-tables examples docs demo clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

docs:
	$(PYTHON) tools/gen_api_docs.py

demo:
	$(PYTHON) -m repro.cli demo

clean:
	rm -rf .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
