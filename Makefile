# Developer entry points for the BioNav reproduction.

PYTHON ?= python

.PHONY: install test lint analyze analyze-sarif baseline bench bench-tables bench-smoke serve-bench bench-serving cluster-bench cluster-bench-smoke substrate-build bench-substrate bench-substrate-smoke bench-coldpath bench-coldpath-smoke examples docs demo clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) tools/lint.py

# Full static-analysis gate: lint rules, the repo-specific semantic
# rules, and the interprocedural packs (key-determinism taint,
# lock-chain, substrate-immutability) over the whole-program call graph.
# Fails on any finding not recorded in tools/analyzer/baseline.json, on
# baseline growth vs HEAD, or when the run blows the wall-time budget.
analyze:
	$(PYTHON) -m tools.analyzer --max-seconds 15

# Regenerate the committed analyzer baseline (records current findings
# so `make analyze` only fails on NEW ones; keep it empty if possible).
# Refuses to grandfather interprocedural findings — pass
# FORCE=--force explicitly if you really mean it.
baseline:
	$(PYTHON) -m tools.analyzer --write-baseline $(FORCE)

# SARIF export of the gate (for GitHub code scanning upload).
analyze-sarif:
	$(PYTHON) -m tools.analyzer --format sarif --output analyzer.sarif

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Fast benchmark subset for CI: the Figure 10 heuristic-latency curve, the
# opt-engine speedup gate (writes BENCH_opt_engine.json), the staged
# pipeline's cache-hit gate (writes BENCH_pipeline.json), the EXPAND
# hot-path gate — batched cost model + warm serving p99 (writes
# BENCH_expand_hotpath.json) — and the cold-path identity smoke
# (array-native tree bit-identical to the dict oracle on both backends).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_fig10_heuristic_time.py benchmarks/bench_opt_engine.py benchmarks/bench_pipeline.py benchmarks/bench_expand_hotpath.py -q
	COLDPATH_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_coldpath.py -q

# Serving-runtime load smoke for CI: reduced client fleet, asserts the
# no-shed / no-lost-session invariants (skips the throughput gate).
serve-bench:
	SERVE_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_serving.py -q

# Full serving load bench: gates 1 -> 4 worker throughput scaling and
# rewrites BENCH_serving.json (including the ungated CPU-bound rows that
# record the single-process GIL ceiling).
bench-serving:
	$(PYTHON) -m pytest benchmarks/bench_serving.py -q

# Multiprocess cluster load smoke for CI: reduced 2-worker fleet,
# asserts the no-shed / no-lost-session / cross-worker-L2 invariants
# (skips the throughput gate).
cluster-bench-smoke:
	CLUSTER_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_cluster.py -q

# Full cluster load bench: measures 1 -> 4 process CPU-bound throughput
# scaling and rewrites BENCH_cluster.json; the >= 2.5x gate is enforced
# on machines with >= 4 cores.
cluster-bench:
	$(PYTHON) -m pytest benchmarks/bench_cluster.py -q

# Offline substrate build: 1M synthetic citations over the paper-scale
# (~48k concept) MeSH preset into build/substrate, printing the manifest
# digest and the build's own peak RSS.
substrate-build:
	$(PYTHON) -m repro.substrate.build --out build/substrate --citations 1000000

# Full substrate bench: two 1M-citation builds (same-seed digest gate),
# RSS-vs-disk ceiling, cold boolean-AND + navigation-tree latency;
# rewrites BENCH_substrate.json.
bench-substrate:
	$(PYTHON) -m pytest benchmarks/bench_substrate.py -q

# Substrate bench smoke for CI: same gates at 20k citations over a 2k
# hierarchy (does not rewrite the JSON).
bench-substrate-smoke:
	SUBSTRATE_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_substrate.py -q

# Full cold-path bench: one 1M-citation build, then legacy vs
# array-native hierarchy open / boolean-AND / navigation-tree build on
# the same directory; gates the >=4x combined and >=10x hierarchy-open
# speedups and rewrites BENCH_coldpath.json.
bench-coldpath:
	$(PYTHON) -m pytest benchmarks/bench_coldpath.py -q

# Cold-path smoke for CI: identity gates only, at 20k citations.
bench-coldpath-smoke:
	COLDPATH_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_coldpath.py -q

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

docs:
	$(PYTHON) tools/gen_api_docs.py

demo:
	$(PYTHON) -m repro.cli demo

clean:
	rm -rf .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
