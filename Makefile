# Developer entry points for the BioNav reproduction.

PYTHON ?= python

.PHONY: install test lint analyze baseline bench bench-tables bench-smoke serve-bench bench-serving examples docs demo clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) tools/lint.py

# Full static-analysis gate: lint rules plus the repo-specific semantic
# rules (determinism, no-recursion, float-equality, bitmask-bounds).
# Fails on any finding not recorded in tools/analyzer/baseline.json.
analyze:
	$(PYTHON) -m tools.analyzer

# Regenerate the committed analyzer baseline (records current findings
# so `make analyze` only fails on NEW ones; keep it empty if possible).
baseline:
	$(PYTHON) -m tools.analyzer --write-baseline

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Fast benchmark subset for CI: the Figure 10 heuristic-latency curve, the
# opt-engine speedup gate (writes BENCH_opt_engine.json), the staged
# pipeline's cache-hit gate (writes BENCH_pipeline.json), and the EXPAND
# hot-path gate — batched cost model + warm serving p99 (writes
# BENCH_expand_hotpath.json).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_fig10_heuristic_time.py benchmarks/bench_opt_engine.py benchmarks/bench_pipeline.py benchmarks/bench_expand_hotpath.py -q

# Serving-runtime load smoke for CI: reduced client fleet, asserts the
# no-shed / no-lost-session invariants (skips the throughput gate).
serve-bench:
	SERVE_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_serving.py -q

# Full serving load bench: gates 1 -> 4 worker throughput scaling and
# rewrites BENCH_serving.json.
bench-serving:
	$(PYTHON) -m pytest benchmarks/bench_serving.py -q

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

docs:
	$(PYTHON) tools/gen_api_docs.py

demo:
	$(PYTHON) -m repro.cli demo

clean:
	rm -rf .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
